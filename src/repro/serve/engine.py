"""Batch scalar-multiplication engine: many scalars, one compiled flow.

The paper's chip amortizes its design effort across every operation it
will ever run — the microprogram is compiled once, then scalars stream
through the datapath.  The serving layer reproduces that economics in
software.  A :class:`BatchEngine` owns

* the one-time curve artifacts (derived endomorphisms, compiled
  inversion-free maps, lattice decomposer) that dominate cold-start
  cost,
* a :class:`~repro.serve.cache.FlowArtifactCache` so the job-shop solve
  and register allocation are paid once per workload shape,
* a resettable :class:`~repro.rtl.datapath.DatapathSimulator` reused
  across requests,

and exposes batch entry points — :meth:`batch_scalarmult`,
:meth:`batch_dh`, :meth:`batch_verify` — with optional
``multiprocessing`` fan-out (balanced chunks, order-preserving, with a
serial fallback) and per-batch :class:`~repro.serve.stats.BatchStats`.

Fault isolation is a first-class layer: a rejected request (small-order
peer key, malformed encoding, bad signature material) costs exactly one
:class:`~repro.serve.faults.Failed` slot in the result, never the batch.
``strict=True`` restores raise-on-first-error.

Worker fan-out runs on a *supervised resident pool*
(:class:`~repro.serve.resilience.PoolSupervisor`): one
``ProcessPoolExecutor`` kept alive across batches — so resident workers
keep their flow-artifact caches warm — health-probed and restarted on
breakage, with a token bucket preventing restart storms.  A chunk whose
worker dies or exceeds its time budget is retried on the pool with
jittered exponential backoff (:class:`~repro.serve.resilience.RetryPolicy`),
bounded by attempts *and* the batch deadline; chunks that exhaust their
attempts are recovered serially in the parent (order still preserved),
so one crashed worker cannot discard results that were already computed.
A :class:`~repro.serve.resilience.CircuitBreaker` trips after repeated
pool-level failures and degrades the engine to serial in-process
execution (or fail-fast ``circuit_open`` failures) until a half-open
probe proves the pool healthy again.  A ``deadline`` budget on any batch
entry point bounds queue-to-result time: items the budget cannot cover
resolve as typed ``Failed(KIND_DEADLINE)`` instead of running late.

Every simulated result is still verified bit-for-bit: the golden check
proves each writeback against the freshly traced reference, and the
engine re-derives the final point from the simulator's output
registers.  Batching changes cost, never results.
"""

from __future__ import annotations

import os
import pickle
import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..curve.decompose import FourQDecomposer
from ..curve.encoding import encode_point, decode_point
from ..curve.endomaps import CompiledEndo, compile_endomorphisms
from ..curve.endomorphisms import default_decomposer
from ..curve.multiscalar import (
    batch_verify_schnorr,
    multi_scalar_mul,
    pippenger_cost_model,
    validate_verify_item,
)
from ..curve.params import SUBGROUP_ORDER_N
from ..curve.point import AffinePoint
from ..dsa.fourq_dh import SmallOrderPoint
from ..dsa.fourq_schnorr import SchnorrSignature, _challenge
from ..flow import FLOW_STAGE_SECONDS, FlowResult, run_flow
from ..hashes.sha256 import sha256
from ..obs import MetricsRegistry, get_registry
from ..rtl.datapath import DatapathSimulator
from ..sched.jobshop import MachineSpec
from ..trace.program import (
    trace_double_scalar_mult,
    trace_msm_window,
    trace_scalar_mult,
)
from .cache import FlowArtifactCache
from .faults import (
    KIND_CIRCUIT_OPEN,
    KIND_DEADLINE,
    KIND_INTERNAL,
    DeadlineExceeded,
    Failed,
    Ok,
    classify_exception,
)
from .resilience import (
    CircuitBreaker,
    Deadline,
    PoolSupervisor,
    RetryPolicy,
    TokenBucket,
)
from .stats import BatchStats

#: Circuit-breaker degradation modes: ``serial`` keeps serving in-process
#: (correct but slower), ``fail_fast`` rejects with ``circuit_open``.
_CIRCUIT_MODES = ("serial", "fail_fast")

#: Sentinel for "no result landed in this slot yet" (None/False are
#: legitimate job results, so identity — not truthiness — marks holes).
_UNSET = object()

#: batch_verify evaluation modes: ``simulate`` runs each item's
#: double-base workload on the simulated datapath; ``msm`` resolves the
#: whole batch with one randomized multi-scalar multiplication and
#: falls back to bisection + per-item simulation on rejection.
_VERIFY_MODES = ("simulate", "msm")

#: Fixed shape of the traced Pippenger window kernel (the micro-op DAG
#: must be identical across calls so the flow-artifact cache holds).
_MSM_KERNEL_POINTS = 8
_MSM_KERNEL_WINDOW = 4


@dataclass
class BatchResult:
    """Per-item outcomes (input order preserved) plus batch statistics.

    ``results`` holds the raw success value in each successful slot —
    callers that index or iterate see plain points/digests/booleans,
    exactly as before fault isolation existed — and the typed
    :class:`~repro.serve.faults.Failed` envelope in the slot of each
    isolated failure.  Use :attr:`errors` / :attr:`ok_count` to inspect
    the failure picture, :meth:`raise_any` / :meth:`unwrap` to opt back
    into exception semantics, and :attr:`outcomes` for a uniform
    ``Ok``/``Failed`` view.
    """

    results: List[Any]
    stats: BatchStats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i):
        return self.results[i]

    @property
    def errors(self) -> List[Failed]:
        """The failed envelopes, in input order (``.index`` is the slot)."""
        return [r for r in self.results if isinstance(r, Failed)]

    @property
    def ok_count(self) -> int:
        """Items that completed successfully."""
        return len(self.results) - len(self.errors)

    @property
    def outcomes(self) -> List[Any]:
        """Uniform per-item view: ``Ok(value, index)`` or ``Failed``."""
        return [
            r if isinstance(r, Failed) else Ok(value=r, index=i)
            for i, r in enumerate(self.results)
        ]

    def raise_any(self) -> None:
        """Raise the first (lowest-index) failure as its exception class."""
        errors = self.errors
        if errors:
            raise errors[0].to_exception()

    def unwrap(self) -> List[Any]:
        """All raw values; raises the first failure if any item failed."""
        self.raise_any()
        return list(self.results)


class BatchEngine:
    """Streams batches of scalar multiplications through one cached flow.

    Args:
        machine: datapath timing model shared by every request.
        scheduler: ``"auto"`` / ``"list"`` / ``"cp"`` (forwarded to the
            flow; full scalar multiplications resolve to list
            scheduling).
        optimize: trace-optimizer level forwarded to the flow —
            ``"none"`` / ``"cse"`` / ``"full"`` (see
            ``docs/optimizer.md``); folded into the shape keys, so an
            engine never mixes artifacts across levels.
        cache_entries: LRU bound of the flow-artifact cache (each
            workload shape — single-base SM, double-base SM, per
            recoding length — occupies one entry).
        check_golden: keep the per-writeback golden check on (the
            bit-exact proof; disabling trades verification for speed).
        chunk_timeout: optional per-chunk time budget (seconds) in
            worker fan-out mode; a chunk that exceeds it is requeued,
            the pool is restarted (a hung worker cannot be cancelled),
            and the chunk is retried or recovered serially
            (``None`` = wait forever).
        metrics: registry the engine (and the flows it runs) records
            into — per-item outcome counters, latency histograms, cache
            event counters, chunk-recovery counters.  Defaults to the
            process-wide :func:`repro.obs.get_registry`; worker
            processes record into their own registry and ship a
            snapshot home, merged here like ``BatchStats`` partials.
        retry_policy: jittered-exponential-backoff budget for transient
            chunk faults in fan-out mode (see
            :class:`~repro.serve.resilience.RetryPolicy`;
            ``max_attempts=1`` reproduces the historical one-shot
            requeue).
        breaker: circuit breaker guarding the pool; trips to serial
            degradation (or fail-fast, see ``circuit_mode``) after
            consecutive pool-level failures.
        restart_limiter: token bucket gating pool restarts so a
            crash-looping worker cannot fork-bomb the host.
        resident_pool: keep the worker pool alive across batch calls
            (the default — resident workers retain warm artifact
            caches); ``False`` restores build-per-batch, for
            comparison benchmarks.
        circuit_mode: what an open breaker does to fan-out batches —
            ``"serial"`` runs them in-process, ``"fail_fast"`` fails
            every item with ``KIND_CIRCUIT_OPEN``.
        retry_rng: RNG drawn for backoff jitter; seed it for a
            reproducible retry schedule (tests do).
    """

    def __init__(
        self,
        machine: Optional[MachineSpec] = None,
        scheduler: str = "auto",
        optimize: str = "none",
        cache_entries: int = 16,
        check_golden: bool = True,
        chunk_timeout: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        restart_limiter: Optional[TokenBucket] = None,
        resident_pool: bool = True,
        circuit_mode: str = "serial",
        retry_rng: Optional[random.Random] = None,
    ):
        if circuit_mode not in _CIRCUIT_MODES:
            raise ValueError(f"circuit_mode must be one of {_CIRCUIT_MODES}")
        self.machine = machine or MachineSpec()
        self.scheduler = scheduler
        self.optimize = optimize
        self.check_golden = check_golden
        self.chunk_timeout = chunk_timeout
        self.metrics = metrics if metrics is not None else get_registry()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(metrics=self.metrics)
        )
        self.resident_pool = resident_pool
        self.circuit_mode = circuit_mode
        self._retry_rng = retry_rng if retry_rng is not None else random.Random()
        self._restart_limiter = (
            restart_limiter
            if restart_limiter is not None
            else TokenBucket(capacity=8, refill_seconds=1.0)
        )
        self._supervisor: Optional[PoolSupervisor] = None
        self.cache = FlowArtifactCache(max_entries=cache_entries)
        self.simulator = DatapathSimulator(
            mult_depth=self.machine.mult_latency,
            addsub_depth=self.machine.addsub_latency,
        )
        self._decomposer: Optional[FourQDecomposer] = None
        self._compiled: Optional[Tuple[CompiledEndo, CompiledEndo]] = None
        # (cycles, arithmetic µops) of the traced MSM window kernel —
        # memoized so batch verification prices its cycle model without
        # re-tracing per batch.
        self._msm_kernel_stats: Optional[Tuple[int, int]] = None
        # Last seen shape key per workload kind: hands run_flow a
        # precomputed key so same-shape requests skip re-hashing the
        # trace.  A stale key (shape drift) is harmless — run_flow
        # detects the mismatch, recomputes the true key, and we re-memo.
        self._shape_keys: Dict[str, str] = {}

    # -- one-time curve artifacts -------------------------------------
    @property
    def decomposer(self) -> FourQDecomposer:
        if self._decomposer is None:
            self._decomposer = default_decomposer()
        return self._decomposer

    @property
    def compiled_endos(self) -> Tuple[CompiledEndo, CompiledEndo]:
        if self._compiled is None:
            self._compiled = compile_endomorphisms()
        return self._compiled

    def warm(self, point: Optional[AffinePoint] = None) -> None:
        """Pay every one-time cost now: curve artifacts + one full flow.

        After ``warm()``, single-base requests hit the artifact cache.
        """
        self.scalarmult(3, point or AffinePoint.generator())

    # -- single-request paths ------------------------------------------
    def scalarmult_flow(self, k: int, point: Optional[AffinePoint] = None) -> FlowResult:
        """Full verified flow for one [k]P (cache-aware)."""
        # self_check=False skips the slow affine (k mod N)*P reference
        # inside the tracer; the simulated result is still verified
        # writeback-by-writeback against the traced values.
        t0 = time.perf_counter()
        prog = trace_scalar_mult(
            k=k,
            point=point,
            decomposer=self.decomposer,
            compiled=self.compiled_endos,
            self_check=False,
        )
        self.metrics.histogram(FLOW_STAGE_SECONDS, stage="trace").observe(
            time.perf_counter() - t0
        )
        flow = run_flow(
            prog,
            machine=self.machine,
            scheduler=self.scheduler,
            optimize=self.optimize,
            check_golden=self.check_golden,
            cache=self.cache,
            simulator=self.simulator,
            cache_key=self._shape_keys.get("scalarmult"),
            metrics=self.metrics,
        )
        if flow.cache_key is not None:
            self._shape_keys["scalarmult"] = flow.cache_key
        return flow

    def scalarmult(self, k: int, point: Optional[AffinePoint] = None) -> AffinePoint:
        """[k]P computed on the simulated datapath (bit-verified)."""
        point = point or AffinePoint.generator()
        if point.is_identity() or k % SUBGROUP_ORDER_N == 0:
            # Degenerate inputs never reach the endomorphism formulas —
            # same contract as scalar_mul_fourq.
            return (
                AffinePoint.identity()
                if point.is_identity()
                else (k % SUBGROUP_ORDER_N) * point
            )
        flow = self.scalarmult_flow(k, point)
        return self._point_from_outputs(flow)

    def double_scalarmult_flow(
        self, u1: int, u2: int, p1: AffinePoint, p2: AffinePoint
    ) -> FlowResult:
        """Full verified flow for [u1]P1 + [u2]P2 (cache-aware)."""
        t0 = time.perf_counter()
        prog = trace_double_scalar_mult(
            u1=u1,
            u2=u2,
            p1=p1,
            p2=p2,
            decomposer=self.decomposer,
            compiled=self.compiled_endos,
            self_check=False,
        )
        self.metrics.histogram(FLOW_STAGE_SECONDS, stage="trace").observe(
            time.perf_counter() - t0
        )
        flow = run_flow(
            prog,
            machine=self.machine,
            scheduler=self.scheduler,
            optimize=self.optimize,
            check_golden=self.check_golden,
            cache=self.cache,
            simulator=self.simulator,
            cache_key=self._shape_keys.get("double_scalarmult"),
            metrics=self.metrics,
        )
        if flow.cache_key is not None:
            self._shape_keys["double_scalarmult"] = flow.cache_key
        return flow

    def msm_kernel_flow(self) -> FlowResult:
        """Trace + simulate one Pippenger bucket window (cache-aware).

        The serving MSM itself runs on the raw field arithmetic — its
        bucket-hit pattern is data-dependent, so per-request traces
        would never share a shape.  Instead this fixed-shape window
        kernel (:func:`repro.trace.program.trace_msm_window`) goes
        through the full trace → job-shop → microcode → simulate flow
        once, and :meth:`msm_cycles_estimate` extrapolates whole-MSM
        cycle counts from its measured cycles-per-µop density.
        """
        t0 = time.perf_counter()
        prog = trace_msm_window(
            n_points=_MSM_KERNEL_POINTS, window=_MSM_KERNEL_WINDOW
        )
        self.metrics.histogram(FLOW_STAGE_SECONDS, stage="trace").observe(
            time.perf_counter() - t0
        )
        flow = run_flow(
            prog,
            machine=self.machine,
            scheduler=self.scheduler,
            optimize=self.optimize,
            check_golden=self.check_golden,
            cache=self.cache,
            simulator=self.simulator,
            cache_key=self._shape_keys.get("msm_window"),
            metrics=self.metrics,
        )
        if flow.cache_key is not None:
            self._shape_keys["msm_window"] = flow.cache_key
        self._msm_kernel_stats = (flow.cycles, prog.arithmetic_size)
        return flow

    def msm_cycles_estimate(
        self, n_points: int, window: Optional[int] = None
    ) -> int:
        """Simulated-cycle estimate for an ``n_points`` bucket MSM.

        Extrapolation model: the traced window kernel's simulated
        cycles-per-µop density (how tightly the scheduler packs the
        double/bucket/aggregate mix onto the datapath) times the full
        algorithm's µop count from
        :func:`repro.curve.multiscalar.pippenger_cost_model`.  A model,
        not a measurement — the honest label for a workload whose trace
        shape is data-dependent.
        """
        if n_points <= 0:
            return 0
        if self._msm_kernel_stats is None:
            self.msm_kernel_flow()
        kernel_cycles, kernel_ops = self._msm_kernel_stats
        mults, addsubs = pippenger_cost_model(n_points, window)
        return int(round(kernel_cycles * (mults + addsubs) / kernel_ops))

    @staticmethod
    def _point_from_outputs(flow: FlowResult) -> AffinePoint:
        out = flow.simulation.outputs
        return AffinePoint(out["result_x"], out["result_y"], check=False)

    # -- batch entry points --------------------------------------------
    def batch_scalarmult(
        self,
        scalars: Sequence[int],
        point: Optional[AffinePoint] = None,
        points: Optional[Sequence[AffinePoint]] = None,
        workers: int = 0,
        dedup: bool = True,
        strict: bool = False,
        min_chunk: Optional[int] = None,
        deadline: Optional[Any] = None,
    ) -> BatchResult:
        """Compute [k_i]P (shared ``point``) or [k_i]P_i (``points``).

        Args:
            scalars: the batch of scalars.
            point: one base shared by the whole batch (default: the
                generator).  Mutually exclusive with ``points``.
            points: per-scalar base points (same length as ``scalars``).
            workers: >1 fans chunks out across that many processes;
                0/1 runs serially in-process (the default, and the
                fallback when the platform lacks ``fork``/``spawn``).
            dedup: compute repeated (k mod N, P) requests once.
            strict: raise on the first failed item instead of returning
                its :class:`~repro.serve.faults.Failed` envelope.
            min_chunk: chunking hint — never give a worker fewer than
                this many jobs (see :meth:`plan_workers`); small flushes
                degrade to fewer workers or the serial path instead of
                paying pool fan-out.
            deadline: optional time budget — seconds (relative) or a
                :class:`~repro.serve.resilience.Deadline`.  Work the
                budget cannot cover resolves as typed
                ``Failed(KIND_DEADLINE)`` envelopes; retries and chunk
                waits never outlive it.
        """
        if points is not None and point is not None:
            raise ValueError("pass either point or points, not both")
        if points is not None and len(points) != len(scalars):
            raise ValueError("points must align with scalars")
        base = point or AffinePoint.generator()
        pts = list(points) if points is not None else [base] * len(scalars)
        jobs = [("sm", (k, p)) for k, p in zip(scalars, pts)]
        return self._run_batch(
            jobs, workers=workers, dedup=dedup, strict=strict, min_chunk=min_chunk,
            deadline=deadline,
        )

    def batch_dh(
        self,
        private: int,
        peer_publics: Sequence[bytes],
        workers: int = 0,
        dedup: bool = True,
        strict: bool = False,
        min_chunk: Optional[int] = None,
        deadline: Optional[Any] = None,
    ) -> BatchResult:
        """Co-factored ECDH against many peers with one private key.

        Per peer: decode, clear the cofactor, reject small-order points
        (:class:`~repro.dsa.fourq_dh.SmallOrderPoint`), run [d]P on the
        simulated datapath, hash the encoding — byte-identical to
        :func:`repro.dsa.fourq_dh.shared_secret`.  A rejected peer costs
        one :class:`~repro.serve.faults.Failed` slot (``small_order`` or
        ``decoding``), never the batch; ``strict=True`` raises instead.
        """
        jobs = [("dh", (private, pub)) for pub in peer_publics]
        return self._run_batch(
            jobs, workers=workers, dedup=dedup, strict=strict, min_chunk=min_chunk,
            deadline=deadline,
        )

    def batch_msm(
        self,
        requests: Sequence[Tuple[Sequence[int], Sequence[AffinePoint]]],
        workers: int = 0,
        dedup: bool = False,
        strict: bool = False,
        min_chunk: Optional[int] = None,
        deadline: Optional[Any] = None,
    ) -> BatchResult:
        """Evaluate many multi-scalar multiplications sum_i [k_i] P_i.

        Each request is a ``(scalars, points)`` pair; the engine picks
        Straus-Shamir or the Pippenger bucket method per request by
        batch size (:func:`repro.curve.multiscalar.multi_scalar_mul`
        with ``method="auto"``).  A malformed request (length mismatch,
        off-curve point surfacing as a field error) costs one typed
        :class:`~repro.serve.faults.Failed` slot, never the batch.
        Each slot's contribution to ``stats.simulated_cycles`` is the
        window-kernel extrapolation of :meth:`msm_cycles_estimate`.
        """
        jobs = [
            ("msm", (tuple(scalars), tuple(points)))
            for scalars, points in requests
        ]
        return self._run_batch(
            jobs, workers=workers, dedup=dedup, strict=strict, min_chunk=min_chunk,
            deadline=deadline,
        )

    def batch_verify(
        self,
        items: Sequence[Tuple[AffinePoint, bytes, SchnorrSignature]],
        workers: int = 0,
        dedup: bool = False,
        strict: bool = False,
        min_chunk: Optional[int] = None,
        deadline: Optional[Any] = None,
        mode: str = "simulate",
    ) -> BatchResult:
        """Verify many Schnorr (public, message, signature) triples.

        ``mode="simulate"`` (the default) runs each item's double-base
        workload [s]G + [N-e]Q on the simulated datapath and compares
        against the commitment — the same decision
        :func:`repro.dsa.fourq_schnorr.verify` makes.  An
        invalid-but-well-formed signature verifies ``False``; an item
        whose material cannot even be processed (wrong types, off-range
        coordinates raising deep in the stack) becomes a typed
        :class:`~repro.serve.faults.Failed` envelope.

        ``mode="msm"`` resolves the whole batch with one randomized
        multi-scalar multiplication
        (:func:`repro.curve.multiscalar.batch_verify_schnorr`): items
        are individually vetted (on-curve, order-N subgroup, s in
        range — rejects resolve ``Ok(False)`` immediately), the
        survivors are batch-checked at roughly the cost of one large
        MSM, and a rejected batch bisects so each forged item ends at
        an authoritative per-item simulated verification while every
        honest item still resolves ``Ok(True)``.  Same per-item
        outcomes as ``"simulate"``, amortized cost.
        """
        if mode not in _VERIFY_MODES:
            raise ValueError(f"mode must be one of {_VERIFY_MODES}")
        kind = "verify_msm" if mode == "msm" else "verify"
        jobs = [(kind, item) for item in items]
        return self._run_batch(
            jobs, workers=workers, dedup=dedup, strict=strict, min_chunk=min_chunk,
            deadline=deadline,
        )

    def run_jobs(
        self,
        jobs: Sequence[Tuple[str, Any]],
        workers: int = 0,
        dedup: bool = True,
        strict: bool = False,
        min_chunk: Optional[int] = None,
        deadline: Optional[Any] = None,
    ) -> BatchResult:
        """Run a pre-formed mixed-kind job list (the front-door entry).

        Each job is ``(kind, payload)`` with the same kinds the batch
        entry points build — ``"sm"`` ``(k, point)``, ``"dh"``
        ``(private, peer_public_bytes)``, ``"verify"``
        ``(public, message, signature)`` — so a coalescer that already
        holds typed requests (e.g. :class:`repro.serve.frontend.Frontend`)
        can dispatch one flush without re-entering a per-kind wrapper.
        Semantics are identical to the wrappers: input order preserved,
        per-item fault isolation, ``min_chunk``-aware fan-out,
        ``deadline``-bounded execution (seconds or a
        :class:`~repro.serve.resilience.Deadline`).
        """
        return self._run_batch(
            list(jobs), workers=workers, dedup=dedup, strict=strict,
            min_chunk=min_chunk, deadline=deadline,
        )

    @staticmethod
    def plan_workers(n_jobs: int, workers: int, min_chunk: Optional[int]) -> int:
        """Effective worker count for a flush of ``n_jobs`` items.

        The pre-computed chunking hint: with ``min_chunk`` set, no
        worker is ever handed fewer than that many jobs, so a small
        flush (the continuous-batching front door's common case under
        light load) degrades gracefully — first to fewer workers, then
        to the serial in-process path — instead of paying process-pool
        fan-out for a near-empty chunk.  ``min_chunk=None`` preserves
        the historical behaviour (any multi-item batch may fan out).
        """
        if workers <= 1 or n_jobs <= 1:
            return 0
        if min_chunk is None or min_chunk <= 1:
            return workers
        return min(workers, n_jobs // min_chunk)

    # -- execution -----------------------------------------------------
    def _execute(self, kind: str, payload) -> Tuple[Any, int, bool]:
        """Run one job; returns (result, simulated_cycles, used_fallback)."""
        if kind == "sm":
            k, p = payload
            if p.is_identity() or k % SUBGROUP_ORDER_N == 0:
                return (k % SUBGROUP_ORDER_N) * p, 0, False
            flow = self.scalarmult_flow(k, p)
            return self._point_from_outputs(flow), flow.cycles, flow.fallback
        if kind == "dh":
            private, peer_public = payload
            peer = decode_point(peer_public)
            cleared = peer.clear_cofactor()
            if cleared.is_identity():
                raise SmallOrderPoint("peer public key has small order")
            if private % SUBGROUP_ORDER_N == 0:
                raise SmallOrderPoint("degenerate shared point")
            flow = self.scalarmult_flow(private, cleared)
            shared = self._point_from_outputs(flow)
            if shared.is_identity():
                raise SmallOrderPoint("degenerate shared point")
            return sha256(encode_point(shared)), flow.cycles, flow.fallback
        if kind == "verify":
            public, message, sig = payload
            try:
                commit = AffinePoint(sig.commit_x, sig.commit_y)
            except ValueError:
                return False, 0, False
            if not (1 <= sig.s < SUBGROUP_ORDER_N):
                return False, 0, False
            e = _challenge(commit, public, message)
            u2 = SUBGROUP_ORDER_N - e
            if public.is_identity() or u2 % SUBGROUP_ORDER_N == 0:
                # Degenerate double-base shapes collapse to single-base.
                lhs = self.scalarmult(sig.s, AffinePoint.generator())
                return lhs == commit, 0, False
            flow = self.double_scalarmult_flow(
                sig.s, u2, AffinePoint.generator(), public
            )
            return self._point_from_outputs(flow) == commit, flow.cycles, flow.fallback
        if kind == "msm":
            scalars, points = payload
            result = multi_scalar_mul(scalars, points)
            live = sum(
                1
                for k, p in zip(scalars, points)
                if not p.is_identity() and k % SUBGROUP_ORDER_N
            )
            return result, self.msm_cycles_estimate(live), False
        if kind == "fault":
            # Fault-injection hook (tests, chaos benchmarks).  The
            # payload fires only inside pool workers; in the parent it
            # degrades to a marker value, so a requeued chunk is
            # recoverable by the parent's serial re-run.
            mode = payload[0]
            if _IN_WORKER:
                if mode == "exit":
                    os._exit(17)
                if mode == "sleep":
                    time.sleep(payload[1])
            return ("fault", mode), 0, False
        raise ValueError(f"unknown job kind {kind!r}")

    @staticmethod
    def _job_key(kind: str, payload) -> Optional[tuple]:
        """Canonical dedup key, or None when the job must run as-is."""
        if kind == "sm":
            k, p = payload
            return (kind, k % SUBGROUP_ORDER_N, p.x, p.y)
        if kind == "dh":
            private, pub = payload
            return (kind, private % SUBGROUP_ORDER_N, bytes(pub))
        return None

    def _run_serial(
        self,
        jobs: Sequence[Tuple[str, Any]],
        dedup: bool,
        strict: bool = False,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[List[Any], BatchStats]:
        """Run jobs in-process with per-item fault isolation.

        Each job either produces its value or (``strict=False``) its
        typed :class:`~repro.serve.faults.Failed` envelope; with
        ``strict=True`` the first failure propagates as the original
        exception, aborting the remainder — the historical behaviour.
        With a ``deadline``, items the expired budget cannot cover fail
        with ``KIND_DEADLINE`` instead of running late (an item already
        underway when the budget runs out still completes — the budget
        gates starts, it does not abort simulations).
        """
        stats = BatchStats()
        seen: Dict[tuple, Any] = {}
        results: List[Any] = []
        m = self.metrics
        cache0 = self.cache.stats_snapshot()
        for kind, payload in jobs:
            if deadline is not None and deadline.expired:
                if strict:
                    raise DeadlineExceeded(
                        f"batch deadline expired with {len(jobs) - len(results)} "
                        "item(s) unstarted"
                    )
                failure = Failed(
                    kind=KIND_DEADLINE,
                    message="deadline expired before this item could start",
                )
                stats.record_error(KIND_DEADLINE, 0.0)
                stats.ops += 1
                m.counter("repro_serve_items_total", kind=kind, outcome="error").inc()
                m.counter("repro_serve_errors_total", kind=KIND_DEADLINE).inc()
                m.counter("repro_deadline_expired_total", stage="engine").inc()
                results.append(failure)
                continue
            key = self._job_key(kind, payload) if dedup else None
            if key is not None and key in seen:
                results.append(seen[key])
                stats.ops += 1
                m.counter("repro_serve_items_total", kind=kind, outcome="dedup").inc()
                continue
            t0 = time.perf_counter()
            try:
                result, cycles, used_fallback = self._execute(kind, payload)
            except Exception as exc:
                if strict:
                    raise
                elapsed = time.perf_counter() - t0
                failure = Failed(
                    kind=classify_exception(exc),
                    message=str(exc),
                    latency=elapsed,
                )
                stats.record_error(failure.kind, elapsed)
                stats.ops += 1
                m.counter("repro_serve_items_total", kind=kind, outcome="error").inc()
                m.counter("repro_serve_errors_total", kind=failure.kind).inc()
                # Failures are never deduped: every bad input re-executes
                # so errors_by_kind matches the injected faults exactly.
                results.append(failure)
                continue
            elapsed = time.perf_counter() - t0
            stats.latencies.append(elapsed)
            stats.simulated_cycles += cycles
            stats.fallbacks += int(used_fallback)
            stats.ops += 1
            m.counter("repro_serve_items_total", kind=kind, outcome="ok").inc()
            m.histogram("repro_serve_latency_seconds", kind=kind).observe(elapsed)
            if key is not None:
                seen[key] = result
            results.append(result)
        cache1 = self.cache.stats_snapshot()
        stats.cache_hits = cache1["hits"] - cache0["hits"]
        stats.cache_misses = cache1["misses"] - cache0["misses"]
        # demote_hit decrements hits, so a window delta can only dip below
        # zero transiently; clamp so the monotone counters never regress.
        for field_name, event in (
            ("hits", "hit"),
            ("misses", "miss"),
            ("evictions", "eviction"),
            ("fallbacks", "fallback"),
        ):
            delta = max(0, cache1[field_name] - cache0[field_name])
            if delta:
                m.counter("repro_cache_events_total", event=event).inc(delta)
        return results, stats

    def _run_batch(
        self,
        jobs: Sequence[Tuple[str, Any]],
        workers: int,
        dedup: bool,
        strict: bool = False,
        min_chunk: Optional[int] = None,
        deadline: Optional[Any] = None,
    ) -> BatchResult:
        t0 = time.perf_counter()
        deadline = Deadline.coerce(deadline)
        msm_slots = [i for i, (kind, _) in enumerate(jobs) if kind == "verify_msm"]
        if msm_slots:
            return self._run_batch_with_msm(
                jobs, msm_slots, workers=workers, dedup=dedup, strict=strict,
                min_chunk=min_chunk, deadline=deadline, t0=t0,
            )
        workers = self.plan_workers(len(jobs), workers or 0, min_chunk)
        if workers > 1 and not self.breaker.allow():
            # Breaker open: the pool keeps failing, stop paying for it.
            self.metrics.counter("repro_breaker_short_circuits_total").inc()
            if self.circuit_mode == "fail_fast":
                results, stats = self._fail_fast_circuit(jobs)
            else:
                results, stats = self._run_serial(
                    jobs, dedup, strict=strict, deadline=deadline
                )
        elif workers > 1:
            try:
                results, stats = self._run_parallel(
                    jobs, workers, dedup, deadline=deadline
                )
            except (ImportError, OSError, pickle.PicklingError):
                # Pools unavailable (restricted platform) or the jobs
                # cannot cross a process boundary: serial fallback.
                self.breaker.record_failure()
                results, stats = self._run_serial(
                    jobs, dedup, strict=strict, deadline=deadline
                )
        else:
            results, stats = self._run_serial(
                jobs, dedup, strict=strict, deadline=deadline
            )
        if not self.resident_pool and self._supervisor is not None:
            self._supervisor.shutdown()
        stats.wall_seconds = time.perf_counter() - t0
        results = [
            replace(r, index=i) if isinstance(r, Failed) else r
            for i, r in enumerate(results)
        ]
        batch = BatchResult(results=results, stats=stats)
        if strict:
            # Parallel workers always run isolated (an exception must
            # not kill the pool); strict surfaces the first failure here.
            batch.raise_any()
        return batch

    def _run_batch_with_msm(
        self,
        jobs: Sequence[Tuple[str, Any]],
        msm_slots: Sequence[int],
        workers: int,
        dedup: bool,
        strict: bool,
        min_chunk: Optional[int],
        deadline: Optional[Deadline],
        t0: float,
    ) -> BatchResult:
        """Split a flush: ``verify_msm`` items resolve as one group.

        The whole point of MSM-mode verification is cross-item
        amortization, so the ``verify_msm`` members of a mixed flush
        are pulled out *before* worker planning and resolved in-parent
        by :meth:`_verify_msm_group`; everything else takes the normal
        serial/fan-out path.  Slots are stitched back in input order.
        """
        ordered: List[Any] = [_UNSET] * len(jobs)
        group_results, stats = self._verify_msm_group(
            [jobs[i][1] for i in msm_slots], deadline=deadline
        )
        for i, r in zip(msm_slots, group_results):
            ordered[i] = r
        rest = [(i, job) for i, job in enumerate(jobs) if job[0] != "verify_msm"]
        if rest:
            sub = self._run_batch(
                [job for _, job in rest], workers=workers, dedup=dedup,
                strict=False, min_chunk=min_chunk, deadline=deadline,
            )
            for (i, _), r in zip(rest, sub.results):
                ordered[i] = r
            stats.merge(sub.stats)
            stats.workers = max(stats.workers, sub.stats.workers)
        stats.ops = len(jobs)
        stats.wall_seconds = time.perf_counter() - t0
        results = [
            replace(r, index=i) if isinstance(r, Failed) else r
            for i, r in enumerate(ordered)
        ]
        batch = BatchResult(results=results, stats=stats)
        if strict:
            batch.raise_any()
        return batch

    def _verify_msm_group(
        self,
        items: Sequence[Tuple[AffinePoint, bytes, SchnorrSignature]],
        deadline: Optional[Deadline] = None,
    ) -> Tuple[List[Any], BatchStats]:
        """Resolve verify items with one randomized MSM + fallback.

        Three stages, each fault-isolated per item:

        1. **Vet** every item (:func:`repro.curve.multiscalar.
           validate_verify_item`): off-curve or out-of-subgroup points,
           out-of-range s, malformed material → that slot resolves
           ``False`` (the verdict per-item ``verify`` would reach for
           such a signature, without endangering the batch soundness
           argument).
        2. **Batch-check** the survivors via
           :func:`~repro.curve.multiscalar.batch_verify_schnorr` —
           all-honest batches (the overwhelmingly common case) resolve
           here at roughly the cost of one large MSM.
        3. **Bisect** a rejected batch: halves re-check recursively, so
           each bad item is cornered in O(log n) sub-batches while the
           honest majority still resolves in bulk; size-1 rejects run
           the authoritative per-item *simulated* verification (the
           bit-verified datapath path — same verdict as
           :func:`repro.dsa.fourq_schnorr.verify`), so one forgery
           costs log-factor extra MSM work, never 63 honest slots.

        ``simulated_cycles`` accounts the window-kernel extrapolation
        (:meth:`msm_cycles_estimate`) per batch MSM performed, plus the
        real simulated cycles of any fallback per-item verifications.
        """
        stats = BatchStats()
        m = self.metrics
        t0 = time.perf_counter()
        n = len(items)
        results: List[Any] = [_UNSET] * n
        stats.ops = n
        if n:
            m.histogram("repro_msm_batch_size").observe(n)

        def fail(idx: int, kind: str, message: str) -> None:
            results[idx] = Failed(kind=kind, message=message)
            stats.record_error(kind, 0.0)
            m.counter(
                "repro_serve_items_total", kind="verify_msm", outcome="error"
            ).inc()
            m.counter("repro_serve_errors_total", kind=kind).inc()
            m.counter("repro_msm_items_total", verdict="error").inc()

        def resolve(idx: int, verdict: bool) -> None:
            results[idx] = verdict
            m.counter(
                "repro_serve_items_total", kind="verify_msm", outcome="ok"
            ).inc()
            m.counter(
                "repro_msm_items_total",
                verdict="valid" if verdict else "invalid",
            ).inc()

        live: List[int] = []
        for idx, item in enumerate(items):
            if deadline is not None and deadline.expired:
                fail(idx, KIND_DEADLINE,
                     "deadline expired before batch verification")
                m.counter("repro_deadline_expired_total", stage="engine").inc()
                continue
            try:
                public, message, sig = item
                commit = validate_verify_item(public, sig)
            except Exception as exc:
                fail(idx, classify_exception(exc), str(exc))
                continue
            if commit is None:
                resolve(idx, False)
            else:
                live.append(idx)

        def leaf_verify(idx: int) -> None:
            """Authoritative per-item verdict on the simulated datapath."""
            m.counter("repro_msm_fallback_verifies_total").inc()
            try:
                verdict, cycles, used_fallback = self._execute(
                    "verify", items[idx]
                )
            except Exception as exc:
                fail(idx, classify_exception(exc), str(exc))
                return
            stats.simulated_cycles += cycles
            stats.fallbacks += int(used_fallback)
            resolve(idx, verdict)

        whole_batch_accepted = bool(live)
        subsets: List[List[int]] = [live] if live else []
        while subsets:
            subset = subsets.pop()
            if deadline is not None and deadline.expired:
                for idx in subset:
                    fail(idx, KIND_DEADLINE,
                         "deadline expired during batch verification")
                    m.counter(
                        "repro_deadline_expired_total", stage="engine"
                    ).inc()
                continue
            accepted: Optional[bool]
            try:
                accepted = batch_verify_schnorr([items[i] for i in subset])
            except Exception:
                accepted = None  # isolate: resolve these items one by one
            if accepted:
                msm_points = 2 * len(subset) + 1
                stats.simulated_cycles += self.msm_cycles_estimate(msm_points)
                for idx in subset:
                    resolve(idx, True)
                continue
            whole_batch_accepted = False
            if accepted is None or len(subset) == 1:
                for idx in subset:
                    leaf_verify(idx)
                continue
            stats.simulated_cycles += self.msm_cycles_estimate(
                2 * len(subset) + 1
            )
            mid = len(subset) // 2
            subsets.append(subset[mid:])
            subsets.append(subset[:mid])

        if n:
            m.counter(
                "repro_msm_batches_total",
                outcome="accepted" if whole_batch_accepted else "fallback",
            ).inc()
            live_points = 2 * len(live) + 1 if live else 0
            if live:
                m.gauge("repro_msm_simulated_cycles_per_op").set(
                    self.msm_cycles_estimate(live_points) / len(live)
                )
        elapsed = time.perf_counter() - t0
        resolved_ok = sum(
            1 for r in results if not isinstance(r, Failed) and r is not _UNSET
        )
        if resolved_ok:
            # Amortized per-item latency: the group resolves as one MSM,
            # so each slot's share is the group wall time split evenly.
            share = elapsed / resolved_ok
            for _ in range(resolved_ok):
                stats.latencies.append(share)
                m.histogram(
                    "repro_serve_latency_seconds", kind="verify_msm"
                ).observe(share)
        for idx, r in enumerate(results):
            if r is _UNSET:  # pragma: no cover - defensive backstop
                results[idx] = Failed(
                    kind=KIND_INTERNAL,
                    message="verify_msm slot left unresolved",
                )
                stats.record_error(KIND_INTERNAL, 0.0)
        return results, stats

    def _fail_fast_circuit(
        self, jobs: Sequence[Tuple[str, Any]]
    ) -> Tuple[List[Any], BatchStats]:
        """Every item fails typed ``circuit_open`` — nothing executes."""
        stats = BatchStats()
        results: List[Any] = []
        for kind, _ in jobs:
            stats.record_error(KIND_CIRCUIT_OPEN, 0.0)
            stats.ops += 1
            self.metrics.counter(
                "repro_serve_items_total", kind=kind, outcome="error"
            ).inc()
            self.metrics.counter(
                "repro_serve_errors_total", kind=KIND_CIRCUIT_OPEN
            ).inc()
            results.append(
                Failed(
                    kind=KIND_CIRCUIT_OPEN,
                    message="worker-pool circuit breaker is open (fail_fast mode)",
                )
            )
        return results, stats

    # -- the resident pool ---------------------------------------------
    def _make_pool(self, workers: int):
        """Factory the supervisor rebuilds pools with (fork + initializer)."""
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = mp.get_context("spawn")
        config = _EngineConfig(
            mult_latency=self.machine.mult_latency,
            addsub_latency=self.machine.addsub_latency,
            read_ports=self.machine.read_ports,
            write_ports=self.machine.write_ports,
            forwarding=self.machine.forwarding,
            scheduler=self.scheduler,
            optimize=self.optimize,
            cache_entries=self.cache.max_entries,
            check_golden=self.check_golden,
        )
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(config,),
        )

    def _ensure_supervisor(self) -> PoolSupervisor:
        if self._supervisor is None:
            self._supervisor = PoolSupervisor(
                factory=self._make_pool,
                limiter=self._restart_limiter,
                metrics=self.metrics,
            )
        return self._supervisor

    @property
    def supervisor(self) -> Optional[PoolSupervisor]:
        """The resident pool's supervisor (``None`` until first fan-out)."""
        return self._supervisor

    def close(self) -> None:
        """Shut the resident worker pool down (idempotent; it rebuilds
        lazily on the next fan-out batch)."""
        if self._supervisor is not None:
            self._supervisor.shutdown()

    def _requeue(self, stats: BatchStats, chunk, attempts: int, pending) -> None:
        stats.requeues += 1
        self.metrics.counter("repro_serve_chunk_requeues_total").inc()
        pending.append((chunk, attempts + 1))

    def _run_parallel(
        self,
        jobs: Sequence[Tuple[str, Any]],
        workers: int,
        dedup: bool,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[List[Any], BatchStats]:
        """Fan chunks out across the supervised resident pool.

        Recovery ladder for a chunk whose worker dies (whole pool
        breaks) or whose result times out (hung worker — the pool is
        restarted, stragglers killed):

        1. retry on the (restarted) pool with jittered exponential
           backoff, up to ``retry_policy.max_attempts`` pool executions
           and never past the batch ``deadline``;
        2. serial re-run in the parent, where per-item isolation cannot
           lose the rest of the batch (with an expired deadline this
           resolves each remaining item as ``Failed(KIND_DEADLINE)``).

        A chunk-*local* fault (payload or result cannot cross the
        process boundary) skips the pool retries — they would fail
        identically — and goes straight to serial recovery.  Healthy
        chunks' results are never discarded by any of this, and every
        slot resolves exactly once.  The breaker hears one verdict per
        batch: failure if the pool ended broken or a restart was denied,
        success otherwise.
        """
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        chunks = _chunk(list(enumerate(jobs)), workers)
        # Report the worker count actually used: never more than the
        # number of non-empty chunks.
        stats = BatchStats(workers=len(chunks))
        ordered: List[Any] = [_UNSET] * len(jobs)
        supervisor = self._ensure_supervisor()
        policy = self.retry_policy
        m = self.metrics

        pending = [(ch, 0) for ch in chunks]  # (chunk, pool attempts so far)
        recover: List[List] = []  # chunks bound for serial parent recovery
        pool_ok = True
        retry_round = 0
        while pending:
            if deadline is not None and deadline.expired:
                recover.extend(ch for ch, _ in pending)
                break
            pool = supervisor.ensure(len(chunks))
            if pool is None:
                # Pool cannot be (re)built — storm limiter denied the
                # restart or the build/probe failed.  Serial recovery
                # for everything still pending.
                pool_ok = False
                recover.extend(ch for ch, _ in pending)
                break
            if retry_round:
                for _ in pending:
                    stats.retries += 1
                    m.counter("repro_retry_attempts_total").inc()
                    m.counter("repro_serve_chunk_retries_total").inc()
            round_items, pending = pending, []
            hung = broken = False
            futures = []
            for ch, attempts in round_items:
                try:
                    futures.append(
                        (pool.submit(_worker_run_chunk, ch, dedup), ch, attempts)
                    )
                except Exception:
                    broken = True
                    self._requeue(stats, ch, attempts, pending)
            for future, ch, attempts in futures:
                timeout = self.chunk_timeout
                if deadline is not None:
                    timeout = deadline.clamp(timeout)
                try:
                    indices, chunk_results, chunk_stats, obs_snap = future.result(
                        timeout=timeout
                    )
                except FutureTimeout:
                    future.cancel()
                    hung = True
                    self._requeue(stats, ch, attempts, pending)
                    continue
                except BrokenProcessPool:
                    # Worker death kills the whole pool: this chunk and
                    # every still-pending one land here and are requeued
                    # for a retry on the restarted pool.
                    broken = True
                    self._requeue(stats, ch, attempts, pending)
                    continue
                except Exception:
                    # Chunk-local fault (unpicklable payload or result):
                    # the pool is healthy and a retry would fail the
                    # same way — straight to serial recovery.
                    stats.requeues += 1
                    m.counter("repro_serve_chunk_requeues_total").inc()
                    recover.append(ch)
                    continue
                for i, r in zip(indices, chunk_results):
                    ordered[i] = r
                stats.merge(chunk_stats)
                # Fold the worker's metric partials home exactly like the
                # BatchStats partials above.
                m.merge_snapshot(obs_snap)
            if hung or broken:
                # A hung worker cannot be cancelled through the executor
                # and a broken pool stays broken: restart (kill
                # stragglers, rebuild, health-probe) before any retry.
                supervisor.mark_broken("timeout" if hung else "crash")
                if not supervisor.restart(
                    "timeout" if hung else "crash", workers=len(chunks)
                ):
                    pool_ok = False
                    recover.extend(ch for ch, _ in pending)
                    pending = []
            # Chunks out of pool attempts fall through to serial recovery.
            still = []
            for ch, attempts in pending:
                if attempts >= policy.max_attempts:
                    m.counter("repro_retry_exhausted_total").inc()
                    recover.append(ch)
                else:
                    still.append((ch, attempts))
            pending = still
            if pending:
                delay = policy.backoff(retry_round, self._retry_rng)
                if deadline is not None:
                    delay = deadline.clamp(delay)
                m.histogram("repro_retry_backoff_seconds").observe(delay)
                if delay > 0:
                    time.sleep(delay)
                retry_round += 1
        if pool_ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
        for chunk in recover:
            # Guaranteed recovery: the serial path isolates per item, so
            # one run always completes (late items fail typed under an
            # expired deadline rather than running past it).
            indices = [i for i, _ in chunk]
            chunk_jobs = [job for _, job in chunk]
            chunk_results, chunk_stats = self._run_serial(
                chunk_jobs, dedup, deadline=deadline
            )
            stats.retries += 1
            m.counter("repro_serve_chunk_retries_total").inc()
            for i, r in zip(indices, chunk_results):
                ordered[i] = r
            stats.merge(chunk_stats)
        for i, r in enumerate(ordered):
            if r is _UNSET:  # pragma: no cover - defensive backstop
                ordered[i] = Failed(
                    kind=KIND_INTERNAL,
                    message="chunk result lost during recovery",
                )
                stats.record_error(KIND_INTERNAL, 0.0)
        stats.ops = len(jobs)
        return ordered, stats


# -- worker fan-out machinery ------------------------------------------


@dataclass(frozen=True)
class _EngineConfig:
    """Picklable construction recipe for worker-side engines.

    Holds only per-*engine* settings: per-batch knobs (``dedup``) travel
    with each :func:`_worker_run_chunk` call instead, so the resident
    pool never needs a rebuild just because a batch flipped a flag.
    """

    mult_latency: int
    addsub_latency: int
    read_ports: int
    write_ports: int
    forwarding: bool
    scheduler: str
    optimize: str
    cache_entries: int
    check_golden: bool


_WORKER_ENGINE: Optional[BatchEngine] = None
#: True only inside pool worker processes (set by the initializer); the
#: fault-injection job kind keys off this so injected crashes can never
#: take down the parent.
_IN_WORKER: bool = False


def _worker_init(config: _EngineConfig) -> None:
    global _WORKER_ENGINE, _IN_WORKER
    _IN_WORKER = True
    _WORKER_ENGINE = BatchEngine(
        machine=MachineSpec(
            mult_latency=config.mult_latency,
            addsub_latency=config.addsub_latency,
            read_ports=config.read_ports,
            write_ports=config.write_ports,
            forwarding=config.forwarding,
        ),
        scheduler=config.scheduler,
        optimize=config.optimize,
        cache_entries=config.cache_entries,
        check_golden=config.check_golden,
        # Workers never fan out themselves; their engine needs no pool.
        resident_pool=False,
    )


def _worker_run_chunk(chunk, dedup: bool = True):
    indices = [i for i, _ in chunk]
    jobs = [job for _, job in chunk]
    assert _WORKER_ENGINE is not None
    # The worker's process-wide registry accounts for this chunk only:
    # reset at the start, snapshot (plain picklable dict) shipped home at
    # the end, merged by the parent like the BatchStats partials.  A fork
    # worker inherits the parent's registry contents, so without the
    # reset the parent would double-count everything it recorded before
    # the fork.
    registry = get_registry()
    registry.reset()
    results, stats = _WORKER_ENGINE._run_serial(jobs, dedup)
    return indices, results, stats, registry.snapshot()


def _chunk(items: List, n: int) -> List[List]:
    """Split into at most n balanced contiguous chunks (sizes differ <= 1).

    Never emits an empty chunk: 5 jobs across 4 workers yield sizes
    [2, 1, 1, 1] — four busy workers, not three chunks and an idle one.
    Callers report ``len(chunks)`` as the worker count actually used.
    """
    if not items:
        return []
    n = max(1, min(n, len(items)))
    base, extra = divmod(len(items), n)
    chunks: List[List] = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


# -- module-level convenience API --------------------------------------

_DEFAULT_ENGINE: Optional[BatchEngine] = None
_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> BatchEngine:
    """The process-wide shared engine (lazily constructed, thread-safe).

    Double-checked locking: the fast path is one unlocked read, and the
    lock guarantees concurrent first callers all receive the same
    instance (two racing engines would each warm their own artifact
    cache and split the hit-rate statistics).
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        with _DEFAULT_ENGINE_LOCK:
            if _DEFAULT_ENGINE is None:
                _DEFAULT_ENGINE = BatchEngine()
    return _DEFAULT_ENGINE


def batch_scalarmult(
    scalars: Sequence[int],
    point: Optional[AffinePoint] = None,
    points: Optional[Sequence[AffinePoint]] = None,
    workers: int = 0,
    strict: bool = False,
) -> BatchResult:
    """[k_i]P for a batch of scalars on the shared default engine."""
    return default_engine().batch_scalarmult(
        scalars, point=point, points=points, workers=workers, strict=strict
    )


def batch_dh(
    private: int,
    peer_publics: Sequence[bytes],
    workers: int = 0,
    strict: bool = False,
) -> BatchResult:
    """Batched co-factored ECDH on the shared default engine."""
    return default_engine().batch_dh(
        private, peer_publics, workers=workers, strict=strict
    )


def batch_verify(
    items: Sequence[Tuple[AffinePoint, bytes, SchnorrSignature]],
    workers: int = 0,
    strict: bool = False,
    mode: str = "simulate",
) -> BatchResult:
    """Batched Schnorr verification on the shared default engine."""
    return default_engine().batch_verify(
        items, workers=workers, strict=strict, mode=mode
    )


def batch_msm(
    requests: Sequence[Tuple[Sequence[int], Sequence[AffinePoint]]],
    workers: int = 0,
    strict: bool = False,
) -> BatchResult:
    """Batched multi-scalar multiplication on the shared default engine."""
    return default_engine().batch_msm(requests, workers=workers, strict=strict)
