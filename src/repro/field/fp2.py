"""Arithmetic in the quadratic extension field F_{p^2} = F_p(i), i^2 = -1.

FourQ points live over F_{p^2} with p = 2^127 - 1.  An element is
``a0 + a1*i`` with ``a0, a1`` in F_p — exactly the representation the
paper's datapath stores in its 254-bit register file.

Two multiplication routines are provided:

* :func:`fp2_mul_schoolbook` — four F_p multiplications, the structure
  used by earlier pairing processors (paper reference [15]);
* :func:`fp2_mul` — Karatsuba with lazy reduction, three F_p
  multiplications, the structure of the paper's pipelined multiplier
  (Algorithm 2).  The bit-exact *hardware* version of Algorithm 2 —
  with explicit 254-bit fold slices — lives in :mod:`repro.rtl.multiplier`;
  this module is the mathematical layer the hardware is verified against.

Raw elements are ``(int, int)`` tuples in hot paths; the :class:`Fp2`
class wraps them for high-level code.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from .fp import (
    P127,
    fp_add,
    fp_inv,
    fp_is_square,
    fp_mul,
    fp_neg,
    fp_reduce,
    fp_sqr,
    fp_sqrt,
    fp_sub,
)

#: Raw representation of an F_{p^2} element: (real, imaginary).
Fp2Raw = Tuple[int, int]

ZERO: Fp2Raw = (0, 0)
ONE: Fp2Raw = (1, 0)
I_UNIT: Fp2Raw = (0, 1)


def fp2_add(a: Fp2Raw, b: Fp2Raw) -> Fp2Raw:
    """Component-wise addition."""
    return (fp_add(a[0], b[0]), fp_add(a[1], b[1]))


def fp2_sub(a: Fp2Raw, b: Fp2Raw) -> Fp2Raw:
    """Component-wise subtraction."""
    return (fp_sub(a[0], b[0]), fp_sub(a[1], b[1]))


def fp2_neg(a: Fp2Raw) -> Fp2Raw:
    """Negation."""
    return (fp_neg(a[0]), fp_neg(a[1]))


def fp2_conj(a: Fp2Raw) -> Fp2Raw:
    """Complex conjugation ``a0 + a1*i -> a0 - a1*i``.

    This is exactly the p-power Frobenius on F_{p^2}: for
    ``p === 3 (mod 4)`` we have ``i^p = -i``, so ``x^p = conj(x)``.
    It is free in hardware (sign flip) and is the cheap half of FourQ's
    ψ endomorphism.
    """
    return (a[0], fp_neg(a[1]))


def fp2_mul_schoolbook(a: Fp2Raw, b: Fp2Raw) -> Fp2Raw:
    """Multiply using four F_p multiplications (the pre-Karatsuba datapath).

    ``(a0 + a1 i)(b0 + b1 i) = (a0 b0 - a1 b1) + (a0 b1 + a1 b0) i``.
    """
    a0, a1 = a
    b0, b1 = b
    t0 = fp_mul(a0, b0)
    t1 = fp_mul(a1, b1)
    t2 = fp_mul(a0, b1)
    t3 = fp_mul(a1, b0)
    return (fp_sub(t0, t1), fp_add(t2, t3))


def fp2_mul(a: Fp2Raw, b: Fp2Raw) -> Fp2Raw:
    """Multiply using Karatsuba with lazy reduction (3 F_p muls).

    Mirrors the dataflow of the paper's Algorithm 2:

    * ``t0 = x0*y0``, ``t1 = x1*y1`` (double-width, reduction delayed),
    * ``t6 = (x0+x1)*(y0+y1)``,
    * real part  ``t0 - t1``  reduced once,
    * imag part  ``t6 - t0 - t1`` reduced once.

    The reductions use the Mersenne fold, so no division appears.
    """
    x0, x1 = a
    y0, y1 = b
    t0 = x0 * y0              # <= (p-1)^2, reduction deferred
    t1 = x1 * y1
    t6 = (x0 + x1) * (y0 + y1)
    c0 = fp_reduce(t0 - t1 + P127 * P127)      # keep non-negative pre-fold
    c1 = fp_reduce(t6 - t0 - t1)
    return (c0, c1)


def fp2_sqr(a: Fp2Raw) -> Fp2Raw:
    """Square an element: ``(a0+a1 i)^2 = (a0-a1)(a0+a1) + 2 a0 a1 i``.

    Costs two F_p multiplications; in the paper's unified datapath a
    squaring is issued to the same pipelined multiplier as a full
    multiplication (one slot), so op-counting treats S = M.
    """
    a0, a1 = a
    c0 = fp_mul(fp_sub(a0, a1), fp_add(a0, a1))
    c1 = fp_reduce(2 * a0 * a1)
    return (c0, c1)


def fp2_norm(a: Fp2Raw) -> int:
    """Field norm  N(a) = a * conj(a) = a0^2 + a1^2  (an element of F_p)."""
    return fp_add(fp_sqr(a[0]), fp_sqr(a[1]))


def fp2_inv(a: Fp2Raw) -> Fp2Raw:
    """Multiplicative inverse: ``a^-1 = conj(a) / N(a)``."""
    n = fp2_norm(a)
    if n == 0:
        raise ZeroDivisionError("inverse of zero in F_{p^2}")
    ninv = fp_inv(n)
    return (fp_mul(a[0], ninv), fp_mul(fp_neg(a[1]), ninv))


def fp2_mul_int(a: Fp2Raw, k: int) -> Fp2Raw:
    """Multiply by a small integer constant."""
    k %= P127
    return (fp_mul(a[0], k), fp_mul(a[1], k))


def fp2_pow(a: Fp2Raw, e: int) -> Fp2Raw:
    """Exponentiation by a non-negative integer via square-and-multiply."""
    if e < 0:
        return fp2_pow(fp2_inv(a), -e)
    result = ONE
    base = a
    while e:
        if e & 1:
            result = fp2_mul(result, base)
        base = fp2_sqr(base)
        e >>= 1
    return result


def fp2_sqrt(a: Fp2Raw) -> Optional[Fp2Raw]:
    """Return a square root of ``a`` in F_{p^2}, or None if none exists.

    Uses the standard complex-style formula: for ``a = a0 + a1 i``,
    with ``n = sqrt(a0^2 + a1^2)`` in F_p (the norm is a square iff
    ``a`` is a square in F_{p^2} up to a factor of -1 handling), solve

        x0^2 = (a0 + n) / 2,   x1 = a1 / (2 x0).

    Both branches ``+-n`` are tried; the pure-imaginary / pure-real edge
    cases are handled separately.
    """
    a0, a1 = a
    if a1 == 0:
        # a is in F_p: either sqrt in F_p, or sqrt(-|a|) = i*sqrt(|a|).
        r = fp_sqrt(a0)
        if r is not None:
            return (r, 0)
        r = fp_sqrt(fp_neg(a0))
        if r is not None:
            return (0, r)
        return None
    n = fp_sqrt(fp2_norm(a))
    if n is None:
        return None
    inv2 = fp_inv(2)
    for sign_n in (n, fp_neg(n)):
        half = fp_mul(fp_add(a0, sign_n), inv2)
        x0 = fp_sqrt(half)
        if x0 is None or x0 == 0:
            continue
        x1 = fp_mul(a1, fp_inv(fp_add(x0, x0)))
        cand = (x0, x1)
        if fp2_sqr(cand) == a:
            return cand
    return None


def fp2_is_square(a: Fp2Raw) -> bool:
    """True iff ``a`` is a square in F_{p^2}.

    ``a`` is a square in F_{p^2} iff its norm ``a^(p+1) = N(a)`` is a
    square in F_p.
    """
    if a == ZERO:
        return True
    return fp_is_square(fp2_norm(a))


class Fp2:
    """An element of F_{p^2} with operator overloading.

    Wraps a raw ``(int, int)`` pair.  Supports mixed arithmetic with
    ints (treated as F_p constants embedded into F_{p^2}).
    """

    __slots__ = ("re", "im")

    def __init__(self, re: Union[int, Fp2Raw, "Fp2"] = 0, im: int = 0):
        if isinstance(re, Fp2):
            self.re, self.im = re.re, re.im
        elif isinstance(re, tuple):
            self.re, self.im = re[0] % P127, re[1] % P127
        else:
            self.re, self.im = re % P127, im % P127

    # -- conversions -------------------------------------------------
    @property
    def raw(self) -> Fp2Raw:
        """The underlying ``(real, imag)`` int tuple."""
        return (self.re, self.im)

    def __repr__(self) -> str:
        return f"Fp2({hex(self.re)}, {hex(self.im)})"

    # -- comparisons -------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fp2):
            return self.raw == other.raw
        if isinstance(other, tuple):
            return self.raw == (other[0] % P127, other[1] % P127)
        if isinstance(other, int):
            return self.raw == (other % P127, 0)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Fp2", self.re, self.im))

    def __bool__(self) -> bool:
        return self.raw != ZERO

    # -- arithmetic --------------------------------------------------
    @staticmethod
    def _coerce(other: Union[int, Fp2Raw, "Fp2"]) -> Optional[Fp2Raw]:
        if isinstance(other, Fp2):
            return other.raw
        if isinstance(other, tuple):
            return (other[0] % P127, other[1] % P127)
        if isinstance(other, int):
            return (other % P127, 0)
        return None

    def __add__(self, other: Union[int, Fp2Raw, "Fp2"]) -> "Fp2":
        v = self._coerce(other)
        if v is None:
            return NotImplemented  # type: ignore[return-value]
        return Fp2(fp2_add(self.raw, v))

    __radd__ = __add__

    def __sub__(self, other: Union[int, Fp2Raw, "Fp2"]) -> "Fp2":
        v = self._coerce(other)
        if v is None:
            return NotImplemented  # type: ignore[return-value]
        return Fp2(fp2_sub(self.raw, v))

    def __rsub__(self, other: Union[int, Fp2Raw, "Fp2"]) -> "Fp2":
        v = self._coerce(other)
        if v is None:
            return NotImplemented  # type: ignore[return-value]
        return Fp2(fp2_sub(v, self.raw))

    def __mul__(self, other: Union[int, Fp2Raw, "Fp2"]) -> "Fp2":
        v = self._coerce(other)
        if v is None:
            return NotImplemented  # type: ignore[return-value]
        return Fp2(fp2_mul(self.raw, v))

    __rmul__ = __mul__

    def __neg__(self) -> "Fp2":
        return Fp2(fp2_neg(self.raw))

    def __pow__(self, e: int) -> "Fp2":
        return Fp2(fp2_pow(self.raw, e))

    def __truediv__(self, other: Union[int, Fp2Raw, "Fp2"]) -> "Fp2":
        v = self._coerce(other)
        if v is None:
            return NotImplemented  # type: ignore[return-value]
        return Fp2(fp2_mul(self.raw, fp2_inv(v)))

    def __rtruediv__(self, other: Union[int, Fp2Raw, "Fp2"]) -> "Fp2":
        v = self._coerce(other)
        if v is None:
            return NotImplemented  # type: ignore[return-value]
        return Fp2(fp2_mul(v, fp2_inv(self.raw)))

    # -- field-specific helpers -------------------------------------
    def conjugate(self) -> "Fp2":
        """Conjugation / p-power Frobenius."""
        return Fp2(fp2_conj(self.raw))

    def inverse(self) -> "Fp2":
        """Multiplicative inverse."""
        return Fp2(fp2_inv(self.raw))

    def norm(self) -> int:
        """Field norm down to F_p."""
        return fp2_norm(self.raw)

    def sqrt(self) -> Optional["Fp2"]:
        """A square root in F_{p^2}, or None for a non-square."""
        r = fp2_sqrt(self.raw)
        return None if r is None else Fp2(r)

    def is_square(self) -> bool:
        """True iff this element is a square in F_{p^2}."""
        return fp2_is_square(self.raw)

    def square(self) -> "Fp2":
        """The element squared (uses the 2-mul squaring formula)."""
        return Fp2(fp2_sqr(self.raw))
