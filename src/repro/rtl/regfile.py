"""Register file model: 4 read / 2 write ports, port-usage checked.

The paper's register file "is equipped with four-read and two-write
ports so as to minimize the memory access overhead" (Section III-A).
The model enforces the port budget every cycle and the
read-before-write ordering the allocator assumes (reads see the value
from the start of the cycle; writes land at the end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..field.fp2 import Fp2Raw


class PortViolation(RuntimeError):
    """A cycle exceeded the register file's port budget."""


@dataclass
class RegisterFile:
    size: int
    read_ports: int = 4
    write_ports: int = 2

    def __post_init__(self) -> None:
        self._data: List[Optional[Fp2Raw]] = [None] * self.size
        self._reads_this_cycle = 0
        self._pending_writes: List[Tuple[int, Fp2Raw]] = []
        self.max_reads_seen = 0
        self.max_writes_seen = 0
        self.total_reads = 0
        self.total_writes = 0

    def reset(self, size: Optional[int] = None) -> None:
        """Restore the power-on state (all registers uninitialized).

        Optionally resizes the file; counters and pending writes are
        cleared so a reused file behaves exactly like a fresh one.
        """
        if size is not None:
            self.size = size
        if len(self._data) == self.size:
            for i in range(self.size):
                self._data[i] = None
        else:
            self._data = [None] * self.size
        self._reads_this_cycle = 0
        self._pending_writes = []
        self.max_reads_seen = 0
        self.max_writes_seen = 0
        self.total_reads = 0
        self.total_writes = 0

    def preload(self, values: Dict[int, Fp2Raw]) -> None:
        for reg, val in values.items():
            self._data[reg] = val

    def begin_cycle(self) -> None:
        self._reads_this_cycle = 0
        self._pending_writes = []

    def read(self, reg: int) -> Fp2Raw:
        self._reads_this_cycle += 1
        if self._reads_this_cycle > self.read_ports:
            raise PortViolation(f"more than {self.read_ports} reads in a cycle")
        self.max_reads_seen = max(self.max_reads_seen, self._reads_this_cycle)
        self.total_reads += 1
        val = self._data[reg]
        if val is None:
            raise RuntimeError(f"read of uninitialized register r{reg}")
        return val

    def write(self, reg: int, value: Fp2Raw) -> None:
        self._pending_writes.append((reg, value))
        if len(self._pending_writes) > self.write_ports:
            raise PortViolation(f"more than {self.write_ports} writes in a cycle")
        self.max_writes_seen = max(self.max_writes_seen, len(self._pending_writes))
        self.total_writes += 1

    def end_cycle(self) -> None:
        for reg, value in self._pending_writes:
            self._data[reg] = value
        self._pending_writes = []

    def peek(self, reg: int) -> Optional[Fp2Raw]:
        """Debug/verification access without port accounting."""
        return self._data[reg]
