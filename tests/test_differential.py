"""Differential test harness: independent implementations must agree.

Randomized (scalar, point) workloads are pushed through every
implementation of the same mathematical contract and the results are
required to agree **bit for bit**:

* the pure Edwards math layer (:func:`scalar_mul_fourq` — extended
  coordinates, endomorphisms, GLV-SAC recoding);
* plain double-and-add and wNAF ladders on the affine group law;
* the **cycle-accurate simulated datapath** through the batch engine
  (trace -> cached schedule -> microcode -> golden-checked simulation),
  both as one pre-formed batch and streamed one request at a time
  through the continuous-batching asyncio front door;
* an independent short-**Weierstrass** model over F_{p^2}: map the
  point through the birational Edwards -> Montgomery -> Weierstrass
  maps, run a textbook chord-and-tangent ladder there, map back;
* the **curve25519** baseline for the DH contract shape (commutativity
  of the key exchange; different curve, so only the protocol-level
  property is comparable).

The random seed comes from ``PYTEST_SEED`` (default pinned), so CI can
diversify coverage across runs while any failure stays reproducible:
``PYTEST_SEED=12345 pytest tests/test_differential.py``.
"""

import os
import random
import zlib

import pytest

from repro.curve.params import SUBGROUP_ORDER_N
from repro.curve.point import AffinePoint, random_subgroup_point
from repro.curve.scalarmult import (
    scalar_mul_double_and_add,
    scalar_mul_double_base,
    scalar_mul_fourq,
    scalar_mul_wnaf,
)
from repro.curve.wmodel import WeierstrassModel
from repro.field.fp2 import fp2_add, fp2_inv, fp2_mul, fp2_neg, fp2_sqr, fp2_sub

SEED = int(os.environ.get("PYTEST_SEED", "0xD1FF"), 0)


def _rng(tag: str) -> random.Random:
    """Per-test RNG: PYTEST_SEED diversifies, the tag decorrelates."""
    return random.Random((SEED << 32) ^ zlib.crc32(tag.encode()))


@pytest.fixture(scope="module")
def engine():
    from repro.serve import BatchEngine

    eng = BatchEngine()
    eng.warm()
    return eng


# -- an independent Weierstrass ladder (test-local on purpose: it must
# -- share no code with the implementations under test) ----------------

def _w_add(model, p, q):
    if p is None:
        return q
    if q is None:
        return p
    (x1, y1), (x2, y2) = p, q
    if x1 == x2:
        if y1 == fp2_neg(y2):
            return None
        num = fp2_add(fp2_mul((3, 0), fp2_sqr(x1)), model.a)
        den = fp2_mul((2, 0), y1)
    else:
        num = fp2_sub(y2, y1)
        den = fp2_sub(x2, x1)
    lam = fp2_mul(num, fp2_inv(den))
    x3 = fp2_sub(fp2_sub(fp2_sqr(lam), x1), x2)
    y3 = fp2_sub(fp2_mul(lam, fp2_sub(x1, x3)), y1)
    return (x3, y3)


def _w_scalar_mul(model, k, wp):
    acc = None
    for bit in bin(k)[2:]:
        acc = _w_add(model, acc, acc)
        if bit == "1":
            acc = _w_add(model, acc, wp)
    return acc


class TestScalarMultDifferential:
    N_CASES = 4

    def test_four_ladders_agree(self, engine):
        """fourq == double-and-add == wNAF == simulated datapath."""
        rng = _rng("ladders")
        cases = []
        for _ in range(self.N_CASES):
            cases.append((rng.randrange(2**256), random_subgroup_point(rng)))
        cases.append((1, random_subgroup_point(rng)))
        cases.append((SUBGROUP_ORDER_N - 1, random_subgroup_point(rng)))
        cases.append((SUBGROUP_ORDER_N + 5, AffinePoint.generator()))

        batch = engine.batch_scalarmult(
            [k for k, _ in cases], points=[p for _, p in cases]
        )
        for (k, p), sim in zip(cases, batch):
            ref = scalar_mul_fourq(k, p)
            dna = scalar_mul_double_and_add(k, p)
            wnaf = scalar_mul_wnaf(k, p)
            assert (ref.x, ref.y) == (dna.x, dna.y), f"k={k:#x}"
            assert (ref.x, ref.y) == (wnaf.x, wnaf.y), f"k={k:#x}"
            assert (ref.x, ref.y) == (sim.x, sim.y), f"k={k:#x} (datapath)"

    def test_weierstrass_model_agrees(self):
        """Map to the Weierstrass model, multiply there, map back."""
        model = WeierstrassModel.of_fourq()
        rng = _rng("weierstrass")
        for _ in range(3):
            p = random_subgroup_point(rng)
            k = rng.randrange(1, SUBGROUP_ORDER_N)
            wp = model.from_edwards(p)
            assert model.contains(wp)
            wr = _w_scalar_mul(model, k, wp)
            assert wr is not None  # k != 0 mod N on an order-N point
            back = model.to_edwards(wr)
            ref = scalar_mul_fourq(k, p)
            assert (back.x, back.y) == (ref.x, ref.y), f"k={k:#x}"

    def test_scalar_reduction_consistency(self, engine):
        """[k]P == [k mod N]P across the layers (Algorithm 1 reduces)."""
        rng = _rng("reduction")
        p = random_subgroup_point(rng)
        k = rng.randrange(2**255, 2**256)
        batch = engine.batch_scalarmult([k, k % SUBGROUP_ORDER_N], point=p)
        assert (batch[0].x, batch[0].y) == (batch[1].x, batch[1].y)


class TestDoubleBaseDifferential:
    def test_double_base_agrees(self, engine):
        """[u1]P1 + [u2]P2: affine sum == Straus-Shamir == datapath."""
        rng = _rng("double-base")
        for _ in range(2):
            p1 = random_subgroup_point(rng)
            p2 = random_subgroup_point(rng)
            u1 = rng.randrange(1, SUBGROUP_ORDER_N)
            u2 = rng.randrange(1, SUBGROUP_ORDER_N)
            affine = (u1 * p1) + (u2 * p2)
            straus = scalar_mul_double_base(u1, u2, p1, p2)
            flow = engine.double_scalarmult_flow(u1, u2, p1, p2)
            sim = engine._point_from_outputs(flow)
            assert (affine.x, affine.y) == (straus.x, straus.y)
            assert (affine.x, affine.y) == (sim.x, sim.y)


class TestDHContractDifferential:
    def test_fourq_and_x25519_commute(self, engine):
        """Both DH implementations satisfy the exchange contract.

        curve25519 lives on a different curve, so the comparable surface
        is the protocol property: both sides derive the same secret, and
        the batch engine's DH agrees byte-for-byte with the reference
        FourQ implementation.
        """
        from repro.baselines.curve25519 import x25519
        from repro.dsa import fourq_dh

        rng = _rng("dh")

        a = fourq_dh.generate_keypair(rng)
        b = fourq_dh.generate_keypair(rng)
        s_ab = fourq_dh.shared_secret(a, b.public_bytes)
        s_ba = fourq_dh.shared_secret(b, a.public_bytes)
        assert s_ab == s_ba
        eng_ab = engine.batch_dh(a.private, [b.public_bytes])
        eng_ba = engine.batch_dh(b.private, [a.public_bytes])
        assert eng_ab[0] == s_ab and eng_ba[0] == s_ba

        ka = rng.randrange(2**255).to_bytes(32, "little")
        kb = rng.randrange(2**255).to_bytes(32, "little")
        pub_a, pub_b = x25519(ka), x25519(kb)
        assert x25519(ka, pub_b) == x25519(kb, pub_a)


class TestFrontendStreamDifferential:
    N_STREAM = 10

    def test_streamed_requests_match_preformed_batch(self, engine):
        """Continuous batching changes arrival, never results.

        N random (scalar, point) requests stream through
        ``Frontend.submit`` concurrently — with seeded arrival jitter so
        the coalescer produces a mix of size- and deadline-triggered
        flushes — and must agree **bit for bit** with a single
        pre-formed ``batch_scalarmult`` over the same inputs.
        """
        import asyncio

        from repro.serve import Frontend

        rng = _rng("frontend-stream")
        cases = [
            (rng.randrange(2**256), random_subgroup_point(rng))
            for _ in range(self.N_STREAM)
        ]
        direct = engine.batch_scalarmult(
            [k for k, _ in cases], points=[p for _, p in cases]
        )
        assert direct.ok_count == len(cases)

        async def stream():
            async with Frontend(engine, max_batch=4, max_wait_ms=10.0) as fe:
                async def one(k, p):
                    # Seeded jitter staggers arrivals across flushes.
                    await asyncio.sleep(rng.random() * 0.02)
                    return await fe.submit("sm", (k, p))

                results = await asyncio.gather(*[one(k, p) for k, p in cases])
            assert fe.stats.completed == len(cases)
            return results

        streamed = asyncio.run(asyncio.wait_for(stream(), timeout=300))
        for (k, _), via_frontend, via_batch in zip(cases, streamed, direct):
            assert (via_frontend.x, via_frontend.y) == (via_batch.x, via_batch.y), (
                f"k={k:#x} (frontend vs batch)"
            )


class TestSignatureDifferential:
    def test_verify_paths_agree(self, engine):
        """Math-layer verify and datapath batch_verify give one verdict."""
        from dataclasses import replace

        from repro.dsa import fourq_schnorr

        rng = _rng("schnorr")
        items = []
        expected = []
        for i in range(3):
            key = fourq_schnorr.generate_keypair(rng)
            msg = bytes([i]) * 24
            sig = fourq_schnorr.sign(key, msg, nonce=rng.randrange(1, SUBGROUP_ORDER_N))
            if i == 1:  # corrupt one signature
                sig = replace(sig, s=(sig.s + 1) % SUBGROUP_ORDER_N)
            items.append((key.public, msg, sig))
            expected.append(fourq_schnorr.verify(key.public, msg, sig))
        assert expected == [True, False, True]
        assert list(engine.batch_verify(items)) == expected
