"""GLV-SAC recoding of the four sub-scalars (paper Alg. 1, steps 4-5).

After decomposition, the four positive sub-scalars (a1, a2, a3, a4)
(a1 odd) are recoded into 65 signed digit pairs

    (d_64, ..., d_0)  with  d_i in [0, 7]   (the table index v_i)
    (m_64, ..., m_0)  with  m_i in {-1, 0}  (the sign mask; the paper's
                                             step 5 maps m_i = -1 -> s_i = +1
                                             and m_i = 0 -> s_i = -1)

such that the double-and-add loop

    Q = s_64 * T[d_64];  for i = 63..0:  Q = 2Q;  Q = Q + s_i * T[d_i]

computes [a1]P + [a2]phi(P) + [a3]psi(P) + [a4]psi(phi(P)) with the
8-entry table T[u] = P + u0*phi(P) + u1*psi(P) + u2*psi(phi(P)).

This is the GLV-SAC ("sign-aligned column") recoding of
Faz-Hernandez-Longa-Sanchez used by FourQ: a1 acts as the sign aligner
(recoded into digits b1_i in {+-1}; possible exactly because a1 is odd)
and each other scalar is recoded with digits in {0, b1_i}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class RecodedScalar:
    """The recoded multi-scalar: table indices and signs, MSB first at the end.

    ``digits[i]`` and ``signs[i]`` correspond to weight 2^i; the main
    loop consumes them from index ``length-1`` down to 0.
    """

    digits: Tuple[int, ...]   # d_i in [0, 7]
    signs: Tuple[int, ...]    # s_i in {+1, -1}

    @property
    def length(self) -> int:
        return len(self.digits)

    @property
    def masks(self) -> Tuple[int, ...]:
        """The paper's m_i encoding: -1 where s_i = +1, 0 where s_i = -1."""
        return tuple(-1 if s == 1 else 0 for s in self.signs)

    @property
    def iterations(self) -> int:
        """Number of double-and-add loop iterations (length - 1)."""
        return len(self.digits) - 1


def recode_glv_sac(scalars: Sequence[int], length: int = 65) -> RecodedScalar:
    """Recode four positive sub-scalars into (d_i, s_i) digit pairs.

    Args:
        scalars: (a1, a2, a3, a4); a1 must be odd and positive; all must
            satisfy ``a_j < 2^(length-1)`` (a1 may use the top bit:
            ``a1 < 2^length`` with the canonical +1 top digit).
        length: number of digits (65 for FourQ's 64-bit sub-scalars).

    Returns:
        A :class:`RecodedScalar` with ``length`` digit/sign pairs.

    Raises:
        ValueError: on a non-odd a1 or out-of-range scalars.
    """
    if len(scalars) != 4:
        raise ValueError("expected exactly four sub-scalars")
    a1, a2, a3, a4 = (int(s) for s in scalars)
    if a1 <= 0 or a1 % 2 == 0:
        raise ValueError("a1 must be positive and odd")
    if any(a < 0 for a in (a2, a3, a4)):
        raise ValueError("sub-scalars must be non-negative")
    if a1.bit_length() > length:
        raise ValueError(f"a1 needs {a1.bit_length()} digits > length={length}")

    # Sign-aligner digits: b1_i in {+1, -1} with sum(b1_i 2^i) = a1.
    # For odd a1: b1_{length-1} = +1, b1_i = 2*bit_{i+1}(a1) - 1.
    b1: List[int] = []
    for i in range(length - 1):
        b1.append(1 if (a1 >> (i + 1)) & 1 else -1)
    b1.append(1)

    # Verify the aligner (cheap and catches range violations).
    if sum(b * (1 << i) for i, b in enumerate(b1)) != a1:
        raise ValueError(
            f"a1 = {a1} cannot be sign-aligned in {length} digits"
        )

    # Other scalars: digits in {0, b1_i}.
    def recode_follower(a: int) -> List[int]:
        out: List[int] = []
        for i in range(length):
            bit = a & 1
            digit = b1[i] * bit
            # a <- floor(a/2) - floor(digit/2); floor(-1/2) = -1.
            a = (a >> 1) + (1 if digit == -1 else 0)
            out.append(digit)
        if a != 0:
            raise ValueError("follower scalar out of range for recoding length")
        return out

    b2 = recode_follower(a2)
    b3 = recode_follower(a3)
    b4 = recode_follower(a4)

    digits = tuple(
        abs(b2[i]) + 2 * abs(b3[i]) + 4 * abs(b4[i]) for i in range(length)
    )
    signs = tuple(b1)
    return RecodedScalar(digits=digits, signs=signs)


def recode_glv_sac_many(
    scalar_tuples: Sequence[Sequence[int]], length: int = 65
) -> List[RecodedScalar]:
    """Recode a batch of decomposed scalars at one common digit length.

    The batch engine streams many scalars through one cached
    microprogram; a shared ``length`` keeps every recoding — and
    therefore every traced workload — the same shape, which is what
    makes the flow-artifact cache hit.  Raises ValueError if any tuple
    does not fit the requested length.
    """
    return [recode_glv_sac(tuple(s), length=length) for s in scalar_tuples]


def recoding_length_for(scalar_tuples: Sequence[Sequence[int]], floor: int = 65) -> int:
    """The smallest common recoding length covering every tuple.

    FourQ's decomposition yields ~64-bit sub-scalars, so this is 65 in
    practice; the helper exists for the rare wider decomposition and for
    non-standard decomposers.
    """
    longest = floor
    for scalars in scalar_tuples:
        longest = max(longest, max(int(s).bit_length() for s in scalars) + 1)
    return longest


def recoded_to_scalars(rec: RecodedScalar) -> Tuple[int, int, int, int]:
    """Inverse of :func:`recode_glv_sac` (used by the round-trip tests)."""
    a1 = sum(s * (1 << i) for i, s in enumerate(rec.signs))
    a2 = sum(rec.signs[i] * ((rec.digits[i] >> 0) & 1) * (1 << i) for i in range(rec.length))
    a3 = sum(rec.signs[i] * ((rec.digits[i] >> 1) & 1) * (1 << i) for i in range(rec.length))
    a4 = sum(rec.signs[i] * ((rec.digits[i] >> 2) & 1) * (1 << i) for i in range(rec.length))
    return (a1, a2, a3, a4)
