"""Property-based fuzzing of the schedulers on random DAGs.

Every scheduler must produce a *valid* schedule (precedences with
latencies, pipelined unit occupancy, register-file ports, forwarding
semantics) for arbitrary dependency structures — not just the curve
workloads.  Hypothesis generates random DAG-shaped problems; the
validator is the oracle.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    JobShopProblem,
    MachineSpec,
    Task,
    block_limited_schedule,
    cp_schedule,
    list_schedule,
    sequential_schedule,
)
from repro.trace.ops import OpKind, Unit


@st.composite
def random_problems(draw):
    """A random DAG of 1-26 tasks over the two units."""
    n = draw(st.integers(min_value=1, max_value=26))
    mult_lat = draw(st.integers(min_value=1, max_value=4))
    fwd = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    tasks = []
    for i in range(n):
        unit = rng.choice([Unit.MULTIPLIER, Unit.ADDSUB])
        kind = OpKind.MUL if unit is Unit.MULTIPLIER else OpKind.ADD
        max_deps = min(i, 2)
        k = rng.randint(0, max_deps)
        deps = tuple(sorted(rng.sample(range(i), k))) if k else ()
        tasks.append(
            Task(
                index=i,
                uid=i,
                unit=unit,
                deps=deps,
                kind=kind,
                reads=deps,
                external_reads=2 - len(deps),
            )
        )
    machine = MachineSpec(mult_latency=mult_lat, forwarding=fwd)
    return JobShopProblem(tasks=tasks, machine=machine)


class TestSchedulerFuzz:
    @given(random_problems())
    @settings(max_examples=40, deadline=None)
    def test_sequential_always_valid(self, prob):
        sequential_schedule(prob).validate()

    @given(random_problems())
    @settings(max_examples=40, deadline=None)
    def test_list_always_valid(self, prob):
        list_schedule(prob).validate()

    @given(random_problems())
    @settings(max_examples=25, deadline=None)
    def test_cp_always_valid_and_not_worse(self, prob):
        res = cp_schedule(prob, node_budget=20_000)
        res.schedule.validate()
        assert res.schedule.makespan <= list_schedule(prob).makespan

    @given(random_problems())
    @settings(max_examples=25, deadline=None)
    def test_block_always_valid(self, prob):
        block_limited_schedule(prob, block_size=5).validate()

    @given(random_problems())
    @settings(max_examples=25, deadline=None)
    def test_ordering_invariant(self, prob):
        """list <= block <= sequential (more freedom never hurts)."""
        lst = list_schedule(prob).makespan
        seq = sequential_schedule(prob).makespan
        assert lst <= seq

    @given(random_problems())
    @settings(max_examples=25, deadline=None)
    def test_makespan_at_least_lower_bound(self, prob):
        lb = prob.lower_bound()
        for sched in (sequential_schedule(prob), list_schedule(prob)):
            assert sched.makespan >= lb


class TestRegallocInvariant:
    def test_no_live_range_overlap_on_same_register(self):
        """Two values sharing a register must have disjoint lifetimes."""
        from repro.isa import allocate_registers
        from repro.sched import problem_from_trace
        from repro.trace import trace_loop_iteration

        prog = trace_loop_iteration()
        prob = problem_from_trace(prog.tracer.trace)
        sched = list_schedule(prob)
        alloc = allocate_registers(
            prob, sched, prog.tracer.trace, prog.tracer.outputs
        )
        by_reg = {}
        for uid, reg in alloc.reg_of.items():
            by_reg.setdefault(reg, []).append(alloc.live_ranges[uid])
        for reg, ranges in by_reg.items():
            ranges.sort()
            for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
                # A later value may be defined only strictly after the
                # previous one's last use (write-after-read same cycle
                # is forbidden by the allocator's model).
                assert s2 > e1, f"register {reg}: [{s1},{e1}] overlaps [{s2},{e2}]"

    def test_full_program_invariant(self):
        from repro.isa import allocate_registers
        from repro.sched import problem_from_trace
        from repro.trace import trace_scalar_mult

        prog = trace_scalar_mult(k=0x1357 << 200)
        prob = problem_from_trace(prog.tracer.trace)
        sched = list_schedule(prob)
        alloc = allocate_registers(
            prob, sched, prog.tracer.trace, prog.tracer.outputs
        )
        by_reg = {}
        for uid, reg in alloc.reg_of.items():
            by_reg.setdefault(reg, []).append(alloc.live_ranges[uid])
        for reg, ranges in by_reg.items():
            ranges.sort()
            for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
                assert s2 > e1


class TestMulticoreModel:
    def test_multicore_scaling(self):
        from repro.asic import calibrate
        from repro.asic.comparison import cores_for_throughput, multicore_entry

        tech = calibrate(cycles=2069)
        one = multicore_entry(tech, 1141, 1)
        four = multicore_entry(tech, 1141, 4)
        assert four.area_kge > 4 * 1141
        assert four.cores == 4
        # per-op latency unchanged
        assert four.latency_ms == one.latency_ms

    def test_cores_for_throughput(self):
        from repro.asic import calibrate
        from repro.asic.comparison import cores_for_throughput

        tech = calibrate(cycles=2069)
        assert cores_for_throughput(tech, 5e4) == 1
        assert cores_for_throughput(tech, 3e5) >= 3

    def test_invalid_cores(self):
        from repro.asic import calibrate
        from repro.asic.comparison import multicore_entry

        tech = calibrate(cycles=2069)
        with pytest.raises(ValueError):
            multicore_entry(tech, 1141, 0)
