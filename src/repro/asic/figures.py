"""ASCII rendering of the paper's Fig. 4 (terminal-friendly charts).

Reproduction artifacts should be inspectable without a plotting stack;
this module renders the calibrated voltage sweep as log-scale ASCII
charts — one panel per quantity (fmax, latency, energy) — with the
paper's measured anchor points marked.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from .technology import PAPER_ANCHORS, SOTBTechnology


def _log_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    title: str,
    unit: str,
    height: int = 10,
    marks: Sequence[Tuple[float, float]] = (),
) -> str:
    """A log-y scatter chart over the voltage axis."""
    lo = min(y for y in ys if y > 0)
    hi = max(ys)
    l_lo, l_hi = math.log10(lo), math.log10(hi)
    span = max(l_hi - l_lo, 1e-9)

    def row_of(y: float) -> int:
        frac = (math.log10(y) - l_lo) / span
        return min(height - 1, max(0, round(frac * (height - 1))))

    grid = [[" "] * len(xs) for _ in range(height)]
    for col, y in enumerate(ys):
        grid[row_of(y)][col] = "*"
    for mx, my in marks:
        col = min(
            range(len(xs)), key=lambda i: abs(xs[i] - mx)
        )
        grid[row_of(my)][col] = "O"

    lines = [f"{title} [{unit}]  (log scale; O = paper anchor)"]
    for r in range(height - 1, -1, -1):
        frac = r / (height - 1)
        label = 10 ** (l_lo + frac * span)
        lines.append(f"{label:10.3g} |{''.join(grid[r])}")
    axis = "".join(
        "+" if i % 6 == 0 else "-" for i in range(len(xs))
    )
    lines.append(f"{'':10} +{axis}")
    ticks = "".join(
        f"{xs[i]:.1f}".ljust(6) for i in range(0, len(xs), 6)
    )
    lines.append(f"{'':12}{ticks}  VDD [V]")
    return "\n".join(lines)


def render_fig4(tech: SOTBTechnology, steps: int = 30) -> str:
    """The three panels of Fig. 4 as ASCII charts."""
    rows = tech.voltage_sweep(lo=0.32, hi=1.20, steps=steps)
    xs = [r[0] for r in rows]
    fmax = [r[1] / 1e6 for r in rows]
    lat = [r[2] * 1e6 for r in rows]
    energy = [r[3] * 1e6 for r in rows]
    (v1, t1, e1), (v2, t2, e2) = PAPER_ANCHORS
    panels = [
        _log_chart(
            xs,
            fmax,
            "Maximum operating frequency",
            "MHz",
            marks=[
                (v1, tech.cycles / t1 / 1e6),
                (v2, tech.cycles / t2 / 1e6),
            ],
        ),
        _log_chart(
            xs,
            lat,
            "Scalar-multiplication latency",
            "us",
            marks=[(v1, t1 * 1e6), (v2, t2 * 1e6)],
        ),
        _log_chart(
            xs,
            energy,
            "Energy per scalar multiplication",
            "uJ",
            marks=[(v1, e1 * 1e6), (v2, e2 * 1e6)],
        ),
    ]
    return "\n\n".join(panels)
