"""E6b — software-pipelining ablation (extension of the scheduling study).

The paper's whole-program scheduling implicitly overlaps loop
iterations.  This bench quantifies the effect with an explicit
modulo-scheduling formulation:

* isolated kernel (block-per-iteration): 24 cycles/iteration;
* software-pipelined steady state: initiation interval II;
* whole-program list scheduling of unrolled iterations: converges to
  the same II — two independent methods agreeing on the steady-state
  throughput, bounded below by the loop-carried recurrence (RecMII).
"""

from repro.sched import (
    kernel_from_traces,
    list_schedule,
    modulo_schedule,
    problem_from_trace,
)
from repro.trace import trace_loop_iteration, trace_loop_iterations


def test_pipelining_initiation_interval(benchmark, loop_prog):
    kernel = kernel_from_traces(loop_prog)
    ms = benchmark.pedantic(
        modulo_schedule, args=(kernel,), rounds=1, iterations=1
    )

    print("\nE6b: software pipelining of the double-and-add kernel")
    print(f"  {'quantity':<36} {'cycles':>7}")
    print(f"  {'isolated kernel (Table I)':<36} {24:>7}")
    print(f"  {'ResMII (multiplier load)':<36} {kernel.res_mii():>7}")
    print(f"  {'RecMII (loop-carried recurrence)':<36} {kernel.rec_mii():>7}")
    print(f"  {'achieved initiation interval':<36} {ms.ii:>7}")
    print(f"  64-iteration loop: {ms.makespan_for(64)} cycles pipelined "
          f"vs {64 * 24} back-to-back "
          f"({64 * 24 / ms.makespan_for(64):.2f}x)")

    benchmark.extra_info["ii"] = ms.ii
    benchmark.extra_info["rec_mii"] = kernel.rec_mii()

    assert kernel.mii() <= ms.ii < 24


def test_pipelining_agrees_with_global_scheduling(benchmark):
    """Unrolled whole-program list scheduling reaches the same
    steady-state cycles/iteration as explicit modulo scheduling."""
    prog16 = trace_loop_iterations(16)
    prob = problem_from_trace(prog16.tracer.trace)
    sched = benchmark.pedantic(
        list_schedule, args=(prob,), rounds=1, iterations=1
    )
    sched.validate()
    per_iter = sched.makespan / 16

    kernel = kernel_from_traces(trace_loop_iteration())
    ms = modulo_schedule(kernel)
    print(f"\n  global list on 16 unrolled iterations: "
          f"{per_iter:.1f} cycles/iter; modulo II = {ms.ii}")
    assert abs(per_iter - ms.ii) <= 2.0
