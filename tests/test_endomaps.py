"""Tests for the compiled (inversion-free) endomorphism evaluation."""

import pytest

from repro.curve.endomaps import (
    apply_compiled_endo,
    apply_compiled_endo_frac,
    compile_endomorphisms,
    frac_to_r1,
)
from repro.curve.point import AffinePoint, random_subgroup_point
from repro.field.fp2 import fp2_inv, fp2_mul


@pytest.fixture(scope="module")
def compiled(endo):
    return compile_endomorphisms(endo)


def _r1_to_affine(r1):
    zinv = fp2_inv(r1.z)
    return AffinePoint(fp2_mul(r1.x, zinv), fp2_mul(r1.y, zinv), check=True)


class TestCompiledEndos:
    def test_phi_matches_derived(self, compiled, endo, rng):
        phi_c, _ = compiled
        for _ in range(3):
            p = random_subgroup_point(rng)
            assert _r1_to_affine(apply_compiled_endo(phi_c, p.x, p.y)) == endo.phi(p)

    def test_psi_matches_derived(self, compiled, endo, rng):
        _, psi_c = compiled
        for _ in range(3):
            p = random_subgroup_point(rng)
            assert _r1_to_affine(apply_compiled_endo(psi_c, p.x, p.y)) == endo.psi(p)

    def test_chained_psi_phi(self, compiled, endo, rng):
        """psi(phi(P)) through fractions, no intermediate inversion."""
        phi_c, psi_c = compiled
        p = random_subgroup_point(rng)
        one = (1, 0)
        fx, fy = apply_compiled_endo_frac(phi_c, (p.x, one), (p.y, one))
        fx, fy = apply_compiled_endo_frac(psi_c, fx, fy)
        assert _r1_to_affine(frac_to_r1(fx, fy)) == endo.psi(endo.phi(p))

    def test_extended_coordinate_invariant(self, compiled, rng):
        """Output R1 must satisfy Ta * Tb * Z == X * Y."""
        phi_c, psi_c = compiled
        p = random_subgroup_point(rng)
        for ce in (phi_c, psi_c):
            r1 = apply_compiled_endo(ce, p.x, p.y)
            assert fp2_mul(fp2_mul(r1.ta, r1.tb), r1.z) == fp2_mul(r1.x, r1.y)

    def test_eigenvalues_attached(self, compiled, endo):
        phi_c, psi_c = compiled
        assert phi_c.eigenvalue == endo.lambda_phi
        assert psi_c.eigenvalue == endo.lambda_psi

    def test_no_inversions_in_trace(self, compiled):
        """The traced evaluation must contain only mul/add-class ops."""
        from repro.trace import OpKind, Tracer

        phi_c, psi_c = compiled
        g = AffinePoint.generator()
        tr = Tracer()
        x = tr.input(g.x, "x")
        y = tr.input(g.y, "y")
        apply_compiled_endo(phi_c, x, y, tr)
        apply_compiled_endo(psi_c, x, y, tr)
        kinds = {op.kind for op in tr.trace}
        assert kinds <= {
            OpKind.MUL,
            OpKind.SQR,
            OpKind.ADD,
            OpKind.SUB,
            OpKind.NEG,
            OpKind.CONJ,
            OpKind.CONST,
            OpKind.INPUT,
        }

    def test_cost_budget(self, compiled):
        """phi ~78 muls, psi ~45 muls: the figures DESIGN.md promises."""
        from repro.trace import Tracer

        phi_c, psi_c = compiled
        g = AffinePoint.generator()
        for ce, lo, hi in ((phi_c, 55, 95), (psi_c, 30, 60)):
            tr = Tracer()
            x = tr.input(g.x, "x")
            y = tr.input(g.y, "y")
            apply_compiled_endo(ce, x, y, tr)
            assert lo <= tr.multiplier_ops() <= hi
