"""E9 — Fig. 3 / Section IV-A: silicon area of the SM unit.

Paper artifact: the fabricated scalar-multiplication unit occupies
1.76 mm x 3.56 mm in 65 nm SOTB, about 1400 kGE in 2-input NAND
equivalents.

This bench regenerates a bottom-up structural gate-equivalent estimate
from the actual scheduled design (register count and control-store
geometry from the flow) and reports the block decomposition.
"""

from repro.asic import PAPER_AREA_KGE, estimate_area


def test_area_estimate(benchmark, full_flow):
    report = benchmark.pedantic(
        estimate_area,
        kwargs=dict(
            registers=full_flow.microprogram.register_count,
            rom_bits=full_flow.fsm.rom_kilobits * 1000,
            states=full_flow.fsm.states,
        ),
        rounds=5,
        iterations=1,
    )
    print("\nE9 / Fig. 3: gate-equivalent area decomposition")
    print(report.render())
    ratio = report.total_kge / PAPER_AREA_KGE
    print(f"\n  {'':24} {'paper':>9} {'measured':>10}")
    print(f"  {'SM unit total':24} {'1400 kGE':>9} {report.total_kge:>6.0f} kGE")
    print(f"  ratio to fabricated: {ratio:.2f}")

    benchmark.extra_info["total_kge"] = round(report.total_kge)
    benchmark.extra_info["paper_kge"] = PAPER_AREA_KGE

    # Same order of magnitude with multiplier-led decomposition.
    assert 0.55 <= ratio <= 1.45
    assert report.share("fp2_multiplier") > 0.3


def test_area_drivers(benchmark, full_flow):
    """Datapath (multiplier + RF) dominates; control stays small."""
    report = benchmark.pedantic(
        estimate_area,
        kwargs=dict(registers=full_flow.microprogram.register_count),
        rounds=5,
        iterations=1,
    )
    datapath = (
        report.blocks["fp2_multiplier"]
        + report.blocks["register_file"]
        + report.blocks["fp2_addsub"]
    )
    print(f"\n  datapath share: {datapath / report.total:.0%}, "
          f"control share: {report.share('control'):.0%}")
    assert datapath / report.total > 0.5
    assert report.share("control") < 0.15
