"""Shared fixtures: cached endomorphisms, decomposer, RNG, hypothesis config."""

import random

import pytest
from hypothesis import HealthCheck, settings

# Field elements are 127-bit; generating them via integers is cheap, but
# some composite strategies get flagged by the default too_slow check on
# loaded CI machines.  Register a calmer profile.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=25,
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def endo():
    """The derived-and-verified endomorphism pair (cached per session)."""
    from repro.curve.derive import derive_endomorphisms

    return derive_endomorphisms()


@pytest.fixture(scope="session")
def decomposer(endo):
    """A decomposer matched to the derived eigenvalues."""
    from repro.curve.decompose import FourQDecomposer

    return FourQDecomposer(lambda_phi=endo.lambda_phi, lambda_psi=endo.lambda_psi)


@pytest.fixture()
def rng():
    """A deterministic RNG per test."""
    return random.Random(0xDA7E2019)
