"""Execution-trace recorder: the paper's Step 1-2 of the design flow.

The SM algorithm "is written by using a Python script, whose execution
trace is recorded to extract the execution order of atomic operations
on F_{p^2}" (paper Section I / III-C).  :class:`Tracer` implements the
:class:`repro.curve.edwards.Fp2Ops` interface; running any of the
curve-level routines (point doubling, table construction, the full
Algorithm 1) with a Tracer as the ops object records the exact
micro-operation sequence while simultaneously computing concrete values
(so the trace is self-checking).

Traced values are opaque handles (:class:`TracedValue`); arithmetic on
them appends :class:`MicroOp` records with SSA-style dependencies.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from ..field.fp2 import (
    Fp2Raw,
    fp2_add,
    fp2_conj,
    fp2_mul,
    fp2_neg,
    fp2_sqr,
    fp2_sub,
)
from .ops import MicroOp, OpKind, Unit


class TracedValue(NamedTuple):
    """An SSA value handle: trace uid plus the concrete value.

    A NamedTuple (not a frozen dataclass) — one is constructed per
    emitted micro-op, so construction cost matters on the serving path.
    """

    uid: int
    value: Fp2Raw

    def __repr__(self) -> str:
        return f"v{self.uid}"


class Tracer:
    """Records micro-ops; implements the Fp2Ops interface.

    Section markers (:meth:`begin_section`) tag ranges of the trace for
    profiling (endomorphisms / table / main loop / normalization).
    Constants are deduplicated by value — the hardware stores each ROM
    constant once.
    """

    def __init__(self) -> None:
        self.trace: List[MicroOp] = []
        self._const_cache: Dict[Fp2Raw, TracedValue] = {}
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self.live: List[int] = []
        self.sections: List[Tuple[str, int, int]] = []
        self._open_sections: List[Tuple[str, int]] = []

    # -- recording helpers -------------------------------------------
    def _emit(
        self, kind: OpKind, srcs: Tuple[TracedValue, ...], value: Fp2Raw, name: str = ""
    ) -> TracedValue:
        uid = len(self.trace)
        self.trace.append(
            MicroOp(
                uid=uid,
                kind=kind,
                srcs=tuple(s.uid for s in srcs),
                value=value,
                name=name,
            )
        )
        return TracedValue(uid=uid, value=value)

    # -- Fp2Ops interface ---------------------------------------------
    def mul(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._emit(OpKind.MUL, (a, b), fp2_mul(a.value, b.value))

    def sqr(self, a: TracedValue) -> TracedValue:
        return self._emit(OpKind.SQR, (a,), fp2_sqr(a.value))

    def add(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._emit(OpKind.ADD, (a, b), fp2_add(a.value, b.value))

    def sub(self, a: TracedValue, b: TracedValue) -> TracedValue:
        return self._emit(OpKind.SUB, (a, b), fp2_sub(a.value, b.value))

    def neg(self, a: TracedValue) -> TracedValue:
        return self._emit(OpKind.NEG, (a,), fp2_neg(a.value))

    def conj(self, a: TracedValue) -> TracedValue:
        return self._emit(OpKind.CONJ, (a,), fp2_conj(a.value))

    def select(self, chosen: TracedValue, *alternatives: TracedValue) -> TracedValue:
        """A constant-time mux: value of ``chosen``, dependency on all.

        ``chosen`` must be one of ``alternatives``; the emitted SELECT op
        lists the chosen source first.
        """
        if not any(chosen.uid == a.uid for a in alternatives):
            raise ValueError("chosen value is not among the alternatives")
        others = tuple(a for a in alternatives if a.uid != chosen.uid)
        return self._emit(OpKind.SELECT, (chosen,) + others, chosen.value)

    def const(self, value: Fp2Raw, name: str = "const") -> TracedValue:
        cached = self._const_cache.get(value)
        if cached is not None:
            return cached
        tv = self._emit(OpKind.CONST, (), value, name)
        self._const_cache[value] = tv
        return tv

    # -- program boundary ----------------------------------------------
    def input(self, value: Fp2Raw, name: str) -> TracedValue:
        """Declare a register-file-preloaded input value."""
        tv = self._emit(OpKind.INPUT, (), value, name)
        self.inputs.append(tv.uid)
        return tv

    def mark_output(self, value: TracedValue, name: str = "") -> None:
        """Declare a trace value as a program output (kept live)."""
        self.outputs.append(value.uid)
        if name:
            op = self.trace[value.uid]
            if not op.name:
                self.trace[value.uid] = MicroOp(
                    uid=op.uid, kind=op.kind, srcs=op.srcs, value=op.value, name=name
                )

    def mark_live(self, value: TracedValue) -> None:
        """Pin a value as live without declaring it a program output.

        The optimizer's dead-value elimination treats ``outputs`` and
        ``live`` as its liveness roots; everything unreachable from them
        is deleted.  Balanced-op-pattern workloads (constant-time code
        that issues an op and discards the result so both branches cost
        the same) must pin those intentionally dead results here, or the
        optimizer would change the trace shape between branches.
        ``mark_live`` also shields the value from being merged away by
        common-subexpression elimination.
        """
        self.live.append(value.uid)

    # -- sections --------------------------------------------------------
    def begin_section(self, name: str) -> None:
        self._open_sections.append((name, len(self.trace)))

    def end_section(self) -> None:
        name, start = self._open_sections.pop()
        self.sections.append((name, start, len(self.trace)))

    # -- stats -----------------------------------------------------------
    def op_counts(self) -> Dict[OpKind, int]:
        counts: Dict[OpKind, int] = {}
        for op in self.trace:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def arithmetic_size(self) -> int:
        """Number of ops that occupy a functional unit."""
        return sum(1 for op in self.trace if op.is_arithmetic)

    def multiplier_ops(self) -> int:
        return sum(1 for op in self.trace if op.unit is Unit.MULTIPLIER)

    def addsub_ops(self) -> int:
        return sum(1 for op in self.trace if op.unit is Unit.ADDSUB)

    def multiplication_share(self) -> float:
        """Fraction of arithmetic ops that are multiplications.

        This is the statistic behind the paper's design decision: "our
        in-house profiling of FourQ's SM revealed that F_{p^2}
        multiplications account for 57% of the total arithmetic
        operations" (Section III-B).
        """
        total = self.arithmetic_size()
        if total == 0:
            return 0.0
        return self.multiplier_ops() / total
