"""Number-theoretic substrate: primality, lattices, polynomial algebra.

These utilities back the self-verification of the FourQ curve constants
and the runtime derivation of the scalar-decomposition lattice and the
curve endomorphisms.
"""

from .lattice import babai_round, dot, lll_reduce, max_abs_entry
from .poly import (
    Poly,
    poly_add,
    poly_deg,
    poly_derivative,
    poly_divmod,
    poly_eval,
    poly_from_roots,
    poly_gcd,
    poly_mod,
    poly_monic,
    poly_mul,
    poly_pow_mod,
    poly_roots,
    poly_scale,
    poly_sub,
    poly_trim,
)
from .primes import inverse_mod, is_probable_prime, sqrt_mod_prime

__all__ = [
    "Poly",
    "babai_round",
    "dot",
    "inverse_mod",
    "is_probable_prime",
    "lll_reduce",
    "max_abs_entry",
    "poly_add",
    "poly_deg",
    "poly_derivative",
    "poly_divmod",
    "poly_eval",
    "poly_from_roots",
    "poly_gcd",
    "poly_mod",
    "poly_monic",
    "poly_mul",
    "poly_pow_mod",
    "poly_roots",
    "poly_scale",
    "poly_sub",
    "poly_trim",
    "sqrt_mod_prime",
]
