"""Baseline curves for the paper's comparisons: P-256 and Curve25519."""

from .curve25519 import RFC7748_VECTOR, x25519, x25519_ladder
from .p256 import P256, p256_group, verify_p256
from .weierstrass import (
    OpCounter,
    WeierstrassCurve,
    WeierstrassGroup,
)

__all__ = [
    "OpCounter",
    "P256",
    "RFC7748_VECTOR",
    "WeierstrassCurve",
    "WeierstrassGroup",
    "p256_group",
    "verify_p256",
    "x25519",
    "x25519_ladder",
]
