"""E-frontend — streamed requests vs pre-formed warm batches.

The front door's claim: continuous batching (flush on size-or-deadline)
converts a stream of individual requests into engine batches well
enough that **streamed throughput at saturation stays within 2x of the
pre-formed warm-batch throughput** — the coalescer's overhead (event
loop, per-request futures, flush boundaries) must not give back the
serving layer's 7x win.  The benchmark also sweeps arrival rate and
``max_wait_ms`` to expose the latency/throughput trade the deadline
knob buys (docs/serving.md, "Tuning max_wait_ms").

Run modes:

* ``python benchmarks/bench_frontend.py`` — the acceptance comparison:
  a pre-formed warm batch of 64 vs 64 requests streamed through
  :class:`repro.serve.frontend.Frontend` at saturation, plus the
  rate × max_wait sweep.  Exits non-zero if streamed ops/s falls below
  half the warm-batch ops/s.
* ``python benchmarks/bench_frontend.py --smoke`` — the same at CI
  sizes (N=12, two sweep points), same 2x acceptance bound.
* ``pytest benchmarks/bench_frontend.py`` — a relaxed-threshold
  assertion suitable for loaded CI machines.
"""

from __future__ import annotations

import argparse
import asyncio
import random
import sys
import time


def measure_warm_batch(engine, scalars):
    """Pre-formed warm-batch ops/s — the number the frontend must chase."""
    result = engine.batch_scalarmult(scalars)
    assert result.ok_count == len(scalars)
    return result.stats.ops_per_second


def run_stream(engine, scalars, rate=0.0, max_batch=16, max_wait_ms=5.0):
    """Stream ``scalars`` through a Frontend; returns the serving figures.

    ``rate`` is the Poisson arrival rate in req/s (0 = saturation: all
    requests submitted immediately).  Returns ops/s measured over the
    full stream wall time and the frontend's own stats object.
    """
    from repro.curve.point import AffinePoint
    from repro.serve import Frontend

    rng = random.Random(0xA221)
    generator = AffinePoint.generator()
    delays, t = [], 0.0
    for _ in scalars:
        t += rng.expovariate(rate) if rate > 0 else 0.0
        delays.append(t)

    async def driver():
        async with Frontend(engine, max_batch=max_batch,
                            max_wait_ms=max_wait_ms, max_queue=4096) as fe:
            async def client(k, delay):
                await asyncio.sleep(delay)
                return await fe.submit("sm", (k, generator))

            t0 = time.perf_counter()
            results = await asyncio.gather(
                *[client(k, d) for k, d in zip(scalars, delays)]
            )
            wall = time.perf_counter() - t0
        return fe, results, wall

    fe, results, wall = asyncio.run(driver())
    assert len(results) == len(scalars)
    stats = fe.stats
    return {
        "ops_per_s": len(scalars) / wall,
        "wall_s": wall,
        "p50_ms": stats.e2e_latencies.percentile(50) * 1e3,
        "p99_ms": stats.e2e_latencies.percentile(99) * 1e3,
        "mean_batch": stats.mean_batch_size,
        "flushes": dict(stats.flushes),
        "stats": stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI sizes (N=12, short sweep), same 2x bound")
    parser.add_argument("--n", type=int, default=None,
                        help="requests per run (default 64; smoke: 12)")
    parser.add_argument("--max-batch", type=int, default=16)
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (12 if args.smoke else 64)

    from repro.serve import BatchEngine

    rng = random.Random(0x5EED)
    scalars = [rng.randrange(2**256) for _ in range(n)]

    print("warming engine (one-time artifacts + first flow)...")
    engine = BatchEngine()
    engine.warm()

    warm_ops = measure_warm_batch(engine, scalars)
    print(f"pre-formed warm batch      : {warm_ops:6.2f} ops/s  (N={n})")

    # The acceptance point: saturation arrivals, default deadline.
    sat = run_stream(engine, scalars, rate=0.0,
                     max_batch=args.max_batch, max_wait_ms=5.0)
    ratio = sat["ops_per_s"] / warm_ops
    print(f"streamed @ saturation      : {sat['ops_per_s']:6.2f} ops/s "
          f"({ratio:.2f}x of warm batch; mean batch {sat['mean_batch']:.1f}, "
          f"p50 {sat['p50_ms']:.1f} ms, p99 {sat['p99_ms']:.1f} ms)")

    # The tuning sweep: arrival rate x flush deadline.
    rates = [warm_ops * 0.5, warm_ops * 2.0]
    waits = [1.0, 20.0] if args.smoke else [1.0, 5.0, 20.0]
    print("\nrate x max_wait sweep (streamed):")
    print(f"{'arrivals':>12} {'max_wait':>9} {'ops/s':>8} {'p50 ms':>8} "
          f"{'p99 ms':>8} {'mean batch':>11}")
    for rate in rates:
        for wait in waits:
            r = run_stream(engine, scalars, rate=rate,
                           max_batch=args.max_batch, max_wait_ms=wait)
            print(f"{rate:10.1f}/s {wait:7.1f}ms {r['ops_per_s']:8.2f} "
                  f"{r['p50_ms']:8.1f} {r['p99_ms']:8.1f} "
                  f"{r['mean_batch']:11.1f}")

    print()
    if sat["ops_per_s"] < warm_ops / 2.0:
        print(f"FAIL: streamed saturation throughput below half the "
              f"warm-batch throughput ({ratio:.2f}x)", file=sys.stderr)
        return 1
    print(f"PASS: streamed-at-saturation within 2x of warm batch "
          f"({ratio:.2f}x)")
    return 0


# -- pytest harness ----------------------------------------------------

def test_streamed_saturation_near_warm_batch():
    """Streamed ops/s at saturation tracks the pre-formed warm batch.

    The CLI acceptance bound is 2x; under pytest (shared CI machines,
    toy N) we assert a relaxed 2.5x so scheduler noise cannot flake the
    suite while a real coalescer regression still fails.
    """
    from repro.serve import BatchEngine

    rng = random.Random(0xBEEF)
    scalars = [rng.randrange(2**256) for _ in range(10)]
    engine = BatchEngine()
    engine.warm()
    warm_ops = measure_warm_batch(engine, scalars)
    sat = run_stream(engine, scalars, rate=0.0, max_batch=8, max_wait_ms=5.0)
    print(f"\n  warm {warm_ops:.1f} ops/s vs streamed {sat['ops_per_s']:.1f} "
          f"ops/s ({sat['ops_per_s'] / warm_ops:.2f}x)")
    assert sat["ops_per_s"] >= warm_ops / 2.5
    assert sat["stats"].completed == len(scalars)


def test_deadline_knob_trades_latency_for_batch_size():
    """Larger max_wait under paced arrivals coalesces bigger batches."""
    from repro.serve import BatchEngine

    rng = random.Random(0xFACE)
    scalars = [rng.randrange(2**256) for _ in range(8)]
    engine = BatchEngine()
    engine.warm()
    warm_ops = measure_warm_batch(engine, scalars)
    rate = max(10.0, warm_ops)
    tight = run_stream(engine, scalars, rate=rate, max_batch=64, max_wait_ms=0.0)
    loose = run_stream(engine, scalars, rate=rate, max_batch=64, max_wait_ms=200.0)
    print(f"\n  mean batch: tight {tight['mean_batch']:.1f} "
          f"vs loose {loose['mean_batch']:.1f}")
    # A 200 ms window at an arrival rate near engine capacity must
    # coalesce more than the flush-immediately window does.
    assert loose["mean_batch"] >= tight["mean_batch"]
    assert loose["stats"].completed == tight["stats"].completed == len(scalars)


if __name__ == "__main__":
    raise SystemExit(main())
