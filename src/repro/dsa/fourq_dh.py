"""Diffie-Hellman key agreement over FourQ.

The second workload an SM accelerator serves (alongside signatures):
ephemeral ECDH.  Follows the FourQ software library's co-factored
variant — the shared-secret computation clears the cofactor 392 so
inputs of small order cannot leak key bits — with the 32-byte point
encoding of :mod:`repro.curve.encoding`.

Key generation uses the fixed-base comb table (the base never changes);
the shared-secret step uses the variable-base Algorithm 1.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Optional

from ..curve.encoding import decode_point, encode_point
from ..curve.fixedbase import FixedBaseTable
from ..curve.params import SUBGROUP_ORDER_N
from ..curve.point import AffinePoint
from ..curve.scalarmult import scalar_mul_fourq
from ..hashes.sha256 import sha256

_GENERATOR_TABLE: Optional[FixedBaseTable] = None


def _generator_table() -> FixedBaseTable:
    global _GENERATOR_TABLE
    if _GENERATOR_TABLE is None:
        _GENERATOR_TABLE = FixedBaseTable(AffinePoint.generator())
    return _GENERATOR_TABLE


@dataclass(frozen=True)
class DHKeyPair:
    private: int
    public_bytes: bytes


class SmallOrderPoint(ValueError):
    """The peer's public key collapses to the identity after clearing."""


def generate_keypair(rng=None) -> DHKeyPair:
    """Private scalar in [1, N-1]; public point [d]G via the comb table."""
    if rng:
        d = rng.randrange(1, SUBGROUP_ORDER_N)
    else:
        d = secrets.randbelow(SUBGROUP_ORDER_N - 1) + 1
    pub = _generator_table().multiply(d)
    return DHKeyPair(private=d, public_bytes=encode_point(pub))


def shared_secret(own: DHKeyPair, peer_public: bytes) -> bytes:
    """Co-factored ECDH: SHA-256( encode( [392 * d] P_peer ) ).

    Raises:
        DecodingError: malformed peer encoding.
        SmallOrderPoint: peer point of small order (identity after
            cofactor clearing) — callers must abort the handshake.
    """
    peer = decode_point(peer_public)
    cleared = peer.clear_cofactor()
    if cleared.is_identity():
        raise SmallOrderPoint("peer public key has small order")
    shared = scalar_mul_fourq(own.private, cleared)
    if shared.is_identity():
        raise SmallOrderPoint("degenerate shared point")
    return sha256(encode_point(shared))
