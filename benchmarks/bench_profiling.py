"""E3 — the 57% profiling claim (paper Section III-B).

Paper claim: "our in-house profiling of FourQ's SM revealed that
F_{p^2} multiplications account for 57% of the total arithmetic
operations performed during the SM" — the justification for the
single-cycle-throughput F_{p^2} multiplier.

This bench profiles an actual recorded full-SM trace.
"""

from repro.analysis import profile_program, render_profile


def test_profiling_multiplication_share(benchmark, full_prog):
    profile = benchmark.pedantic(
        profile_program, args=(full_prog,), rounds=5, iterations=1
    )
    share = profile["total"].mult_share

    print("\nE3 / Section III-B profiling: Fp2 op mix of one full SM")
    print(render_profile(profile))
    print(f"\n  {'':28} {'paper':>8} {'measured':>9}")
    print(f"  {'multiplication share':28} {'57%':>8} {share:>8.1%}")

    benchmark.extra_info["share_paper"] = 0.57
    benchmark.extra_info["share_measured"] = round(share, 4)

    assert 0.54 <= share <= 0.61


def test_profiling_total_size(benchmark, full_prog):
    """'Thousands of microinstructions should be issued during SM.'"""
    total = benchmark.pedantic(
        lambda: full_prog.arithmetic_size, rounds=5, iterations=1
    )
    print(f"\n  total arithmetic micro-ops: {total} (paper: 'thousands')")
    assert 1000 <= total <= 5000
