"""Arithmetic invariants of FourQ: Frobenius trace, CM structure, Q-curve signature.

These are the number-theoretic identities the endomorphism derivation
rests on (see ``docs/derivation.md``); exposing them as library
functions makes the claims checkable by downstream users:

* the Frobenius trace t over F_{p^2} from the verified group order;
* the CM discriminant: 4p^2 - t^2 = 40 * gamma^2 (End algebra Q(sqrt(-10)));
* the degree-2 Q-curve signature: 2t + 4p = s^2 for an integer s
  (existence of a norm-2p endomorphism with trace s);
* eigenvalue consistency: the derived lambda_phi, lambda_psi satisfy
  their characteristic relations modulo N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..field.fp import P127
from .params import CURVE_ORDER, SUBGROUP_ORDER_N


@dataclass(frozen=True)
class CurveInvariants:
    """The computed arithmetic invariants."""

    frobenius_trace: int
    cm_discriminant: int          # the fundamental part (negative)
    cm_conductor: int             # gamma: 4p^2 - t^2 = |D| * gamma^2
    q_curve_trace: int            # s with s^2 = 2t + 4p

    @property
    def endomorphism_field(self) -> str:
        return f"Q(sqrt({self.cm_discriminant // 4}))" if self.cm_discriminant % 4 == 0 else f"Q(sqrt({self.cm_discriminant}))"


def frobenius_trace(order: int = CURVE_ORDER, p: int = P127) -> int:
    """t = p^2 + 1 - #E(F_{p^2}); Hasse gives |t| <= 2p (checked)."""
    t = p * p + 1 - order
    if abs(t) > 2 * p:
        raise ArithmeticError("trace violates the Hasse bound")
    return t


def _exact_sqrt(n: int) -> Optional[int]:
    if n < 0:
        return None
    r = math.isqrt(n)
    return r if r * r == n else None


def compute_invariants(order: int = CURVE_ORDER, p: int = P127) -> CurveInvariants:
    """Derive (and verify) the CM invariants from the group order.

    Raises:
        ArithmeticError: if the expected FourQ identities fail — i.e.
            the supplied order does not belong to a degree-2 Q-curve
            with CM by Q(sqrt(-10)).
    """
    t = frobenius_trace(order, p)
    val = 4 * p * p - t * t
    if val <= 0:
        raise ArithmeticError("curve is not ordinary-looking: t^2 >= 4p^2")
    if val % 40 != 0:
        raise ArithmeticError("4p^2 - t^2 is not divisible by 40")
    gamma = _exact_sqrt(val // 40)
    if gamma is None:
        raise ArithmeticError("4p^2 - t^2 != 40 * square: CM field mismatch")
    s = _exact_sqrt(2 * t + 4 * p)
    if s is None:
        raise ArithmeticError("2t + 4p is not a square: no degree-2 Q-curve signature")
    return CurveInvariants(
        frobenius_trace=t,
        cm_discriminant=-40,
        cm_conductor=gamma,
        q_curve_trace=s,
    )


def eigenvalue_relations_hold(
    lambda_phi: int, lambda_psi: int, n: int = SUBGROUP_ORDER_N
) -> bool:
    """Check the derived eigenvalues' characteristic relations mod N.

    lambda_phi^2 === -20, lambda_psi^2 === 8, and their product squares
    to -160 (consistency of the composed endomorphism psi o phi).
    """
    lp2 = lambda_phi * lambda_phi % n
    ls2 = lambda_psi * lambda_psi % n
    prod2 = lambda_phi * lambda_psi % n
    prod2 = prod2 * prod2 % n
    return (
        lp2 == (-20) % n
        and ls2 == 8 % n
        and prod2 == (-160) % n
    )


def subgroup_index_factorization() -> Tuple[int, int, int]:
    """The cofactor structure 392 = 2^3 * 7^2 (paper Section II-B)."""
    cofactor = CURVE_ORDER // SUBGROUP_ORDER_N
    two_part = cofactor & -cofactor
    rest = cofactor // two_part
    seven_part = 1
    while rest % 7 == 0:
        seven_part *= 7
        rest //= 7
    if rest != 1 or two_part != 8 or seven_part != 49:
        raise ArithmeticError(f"unexpected cofactor structure: {cofactor}")
    return (two_part, seven_part, cofactor)
