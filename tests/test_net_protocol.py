"""The wire format, pinned byte by byte.

What these tests hold still:

* **frame layout** — 4-byte big-endian length prefix covering a
  12-byte header (version, type, codec, flags, request id) plus body;
* **payload codec** — ``wire_encode``/``wire_decode`` roundtrips every
  job payload the engine accepts (curve points, signatures, >64-bit
  scalars, bytes, nested tuples) identically under JSON, so both ends
  of the socket agree on meaning, not just on bytes;
* **rejection taxonomy** — oversized frames die on their length prefix
  (the body is never buffered), version/type/flags mismatches raise
  :class:`ProtocolError` with a stable ``kind``, garbage bodies raise
  ``bad_body``.

Everything here is transport-pure: no server, no engine, just streams.
"""

import asyncio
import struct

import pytest

from repro.curve.point import AffinePoint
from repro.dsa import fourq_schnorr
from repro.serve.net.protocol import (
    CODEC_JSON,
    FRAME_GOAWAY,
    FRAME_HELLO,
    FRAME_NAMES,
    FRAME_PONG,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    HEADER_SIZE,
    PROTOCOL_VERSION,
    FrameTooLarge,
    ProtocolError,
    SUPPORTED_CODECS,
    WireCodecError,
    codec_id,
    codec_name,
    decode_body,
    encode_body,
    encode_frame,
    read_frame,
    wire_decode,
    wire_encode,
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def _reader_for(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def roundtrip(obj):
    return wire_decode(
        decode_body(encode_body(wire_encode(obj), CODEC_JSON), CODEC_JSON)
    )


class TestWireCodec:
    def test_scalars_survive_json(self):
        # FourQ scalars are ~246-bit: far past every integer type JSON
        # implementations agree on.  The tagged hex form must roundtrip
        # them exactly, including negatives and the 64-bit boundary.
        for value in (0, 1, -1, 2**63 - 1, -(2**63), 2**64 - 1, 2**64,
                      2**246 - 3, -(2**255), 0x5EED << 232):
            assert roundtrip(value) == value

    def test_bytes_and_tuples(self):
        payload = (b"\x00\xff" * 16, (1, (2, b"")), [b"x", 7])
        out = roundtrip(payload)
        assert out == payload
        assert isinstance(out, tuple) and isinstance(out[1], tuple)
        assert isinstance(out[2], list)

    def test_curve_point_roundtrips(self):
        g = AffinePoint.generator()
        out = roundtrip(g)
        assert (out.x, out.y) == (g.x, g.y)

    def test_schnorr_signature_roundtrips(self):
        kp = fourq_schnorr.generate_keypair()
        sig = fourq_schnorr.sign(kp, b"wire-codec")
        out = roundtrip((kp.public, b"wire-codec", sig))
        public, message, sig2 = out
        assert fourq_schnorr.verify(public, message, sig2)

    def test_dh_payload_shape(self):
        # The exact payload `repro serve-net` clients send for DH jobs.
        assert roundtrip((123456789, b"\xff" * 32)) == (123456789, b"\xff" * 32)

    def test_unencodable_rejected(self):
        with pytest.raises(WireCodecError):
            wire_encode(object())
        with pytest.raises(WireCodecError):
            wire_encode({1: "non-string key"})
        with pytest.raises(WireCodecError):
            wire_encode({"__wire__": "spoofed tag"})

    def test_malformed_tags_rejected(self):
        for bad in ({"__wire__": "nope"},
                    {"__wire__": "int"},
                    {"__wire__": "bytes", "hex": "zz"},
                    {"__wire__": "point", "x": [1], "y": [2, 3]}):
            with pytest.raises(WireCodecError):
                wire_decode(bad)

    def test_codec_names(self):
        assert "json" in SUPPORTED_CODECS
        assert codec_name(codec_id("json")) == "json"
        with pytest.raises(ProtocolError):
            codec_id("carrier-pigeon")


class TestFrameLayout:
    def test_header_bytes_pinned(self):
        data = encode_frame(FRAME_REQUEST, 0xDEADBEEF, {"kind": "sm"})
        (length,) = struct.unpack(">I", data[:4])
        assert length == len(data) - 4
        version, ftype, codec, flags, request_id = struct.unpack(
            ">BBBBQ", data[4:4 + HEADER_SIZE]
        )
        assert (version, ftype, codec, flags) == (
            PROTOCOL_VERSION, FRAME_REQUEST, CODEC_JSON, 0
        )
        assert request_id == 0xDEADBEEF

    def test_roundtrip_through_a_stream(self):
        async def body():
            body_obj = {"kind": "sm",
                        "payload": wire_encode((5, AffinePoint.generator()))}
            reader = await _reader_for(
                encode_frame(FRAME_REQUEST, 7, body_obj)
            )
            frame = await read_frame(reader, max_frame=1 << 20)
            assert frame.type == FRAME_REQUEST
            assert frame.type_name == FRAME_NAMES[FRAME_REQUEST]
            assert frame.request_id == 7
            k, point = wire_decode(frame.body["payload"])
            assert k == 5 and point == AffinePoint.generator()

        run(body())

    def test_every_frame_type_roundtrips(self):
        async def body():
            blob = b"".join(
                encode_frame(ftype, i, {"t": i})
                for i, ftype in enumerate(sorted(FRAME_NAMES))
            )
            reader = await _reader_for(blob)
            for i, ftype in enumerate(sorted(FRAME_NAMES)):
                frame = await read_frame(reader, max_frame=1 << 20)
                assert (frame.type, frame.request_id) == (ftype, i)
                assert frame.body == {"t": i}

        run(body())

    def test_oversized_frame_rejected_from_its_prefix(self):
        # The length prefix alone condemns the frame: read_frame must
        # raise before consuming (or even receiving) the body.
        async def body():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 1 << 24))  # body never sent
            with pytest.raises(FrameTooLarge):
                await read_frame(reader, max_frame=1 << 16)

        run(body())

    def test_encode_refuses_oversized(self):
        with pytest.raises(FrameTooLarge):
            encode_frame(FRAME_RESPONSE, 1, {"blob": "x" * 4096},
                         max_frame=256)

    def test_version_mismatch_rejected(self):
        async def body():
            data = bytearray(encode_frame(FRAME_HELLO, 0, {}))
            data[4] = 99  # future protocol version
            with pytest.raises(ProtocolError) as exc:
                await read_frame(await _reader_for(bytes(data)),
                                 max_frame=1 << 20)
            assert exc.value.kind == "bad_version"

        run(body())

    def test_unknown_type_and_flags_rejected(self):
        async def body():
            data = bytearray(encode_frame(FRAME_PONG, 0, {}))
            data[5] = 200  # no such frame type
            with pytest.raises(ProtocolError) as exc:
                await read_frame(await _reader_for(bytes(data)),
                                 max_frame=1 << 20)
            assert exc.value.kind == "bad_type"

            data = bytearray(encode_frame(FRAME_PONG, 0, {}))
            data[7] = 0xFF  # reserved flags must be zero in v1
            with pytest.raises(ProtocolError) as exc:
                await read_frame(await _reader_for(bytes(data)),
                                 max_frame=1 << 20)
            assert exc.value.kind == "bad_flags"

        run(body())

    def test_short_frame_rejected(self):
        async def body():
            # Length says 4 bytes: not even room for the header.
            blob = struct.pack(">I", 4) + b"\x00" * 4
            with pytest.raises(ProtocolError) as exc:
                await read_frame(await _reader_for(blob), max_frame=1 << 20)
            assert exc.value.kind == "short_frame"

        run(body())

    def test_garbage_body_rejected(self):
        async def body():
            good = encode_frame(FRAME_GOAWAY, 0, {"reason": "x"})
            garbage = good[:4 + HEADER_SIZE] + b"\xfe" * (
                len(good) - 4 - HEADER_SIZE
            )
            with pytest.raises(ProtocolError) as exc:
                await read_frame(await _reader_for(garbage),
                                 max_frame=1 << 20)
            assert exc.value.kind == "bad_body"

        run(body())

    def test_truncated_stream_raises_incomplete(self):
        async def body():
            data = encode_frame(FRAME_REQUEST, 1, {"kind": "sm"})
            reader = await _reader_for(data[: len(data) // 2])
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader, max_frame=1 << 20)

        run(body())

    def test_request_id_range_enforced(self):
        with pytest.raises(ValueError):
            encode_frame(FRAME_REQUEST, -1, {})
        with pytest.raises(ValueError):
            encode_frame(FRAME_REQUEST, 1 << 64, {})

    def test_bad_codec_byte_rejected(self):
        async def body():
            data = bytearray(encode_frame(FRAME_PONG, 0, {}))
            data[6] = 42  # no such codec
            with pytest.raises(ProtocolError) as exc:
                await read_frame(await _reader_for(bytes(data)),
                                 max_frame=1 << 20)
            assert exc.value.kind == "bad_codec"

        run(body())
