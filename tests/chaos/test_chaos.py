"""Chaos harness: sabotage the serving stack mid-stream, then prove the
exactly-once resolution contract held (ISSUE 7 acceptance).

One seeded stream of requests — clean traffic, worker kills, hung
workers, poison payloads, and dead-on-arrival deadlines — goes through
the full stack (``Frontend`` → ``BatchEngine`` → supervised resident
pool), and the test asserts what a production operator would demand:

* **exactly once** — every submitted request resolves exactly one
  future exactly one time (resolution attempts are counted, not
  inferred), with an ``Ok`` or a *typed* ``Failed``;
* **no deadlocks** — the whole run completes under a hard timeout;
* **typed failures only** — poison resolves with its own kind, expired
  deadlines resolve ``deadline``, sabotage recovers to values or
  resolves with a transient-fault kind, and nothing surfaces a bare
  exception;
* **recovery** — after injection stops, a clean wave of requests all
  resolve ``Ok`` (spot-checked against the math layer) and the pool
  and breaker report healthy;
* **degradation** — with the restart budget starved, the circuit
  breaker walks closed → open (serial fallback keeps answering) →
  half-open → closed.

Seeding follows the repo convention (``PYTEST_SEED`` diversifies, the
tag decorrelates), and the engine's retry jitter uses the same seeded
RNG, so a failure reproduces under the seed pytest prints.
"""

import asyncio
import os
import random
import time
import zlib
from collections import Counter

import pytest

from repro.curve.encoding import encode_point
from repro.curve.point import AffinePoint
from repro.curve.scalarmult import scalar_mul_fourq
from repro.obs import MetricsRegistry
from repro.serve import BatchEngine, Frontend
from repro.serve import frontend as frontend_mod
from repro.serve.faults import (
    KIND_DEADLINE,
    KIND_DECODING,
    KIND_INTERNAL,
    KIND_SMALL_ORDER,
    KIND_TIMEOUT,
    KIND_WORKER_CRASH,
    Failed,
    Ok,
)
from repro.serve.resilience import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    POOL_RUNNING,
    CircuitBreaker,
    RetryPolicy,
    TokenBucket,
)

SEED = int(os.environ.get("PYTEST_SEED", "0xF10C"), 0)

#: Kinds a sabotaged-or-expired request may legitimately resolve with.
TRANSIENT_KINDS = (KIND_DEADLINE, KIND_TIMEOUT, KIND_WORKER_CRASH, KIND_INTERNAL)

SMALL_ORDER_ENCODING = encode_point(AffinePoint.identity())
GARBAGE_ENCODING = b"\xff" * 32


def _rng(tag: str) -> random.Random:
    return random.Random((SEED << 32) ^ zlib.crc32(tag.encode()))


def run(coro, timeout=120):
    """Hard-bounded event loop run: a deadlock fails, never hangs, CI."""
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


def _chaos_engine(tag: str, **kw) -> BatchEngine:
    kw.setdefault("check_golden", False)
    kw.setdefault("metrics", MetricsRegistry())
    kw.setdefault("chunk_timeout", 1.0)
    kw.setdefault("retry_rng", _rng(tag))
    kw.setdefault("restart_limiter", TokenBucket(capacity=16, refill_seconds=1.0))
    return BatchEngine(**kw)


@pytest.mark.slow
class TestChaosStream:
    """The acceptance scenario: one stream, every failure mode at once."""

    def test_exactly_once_under_chaos(self, monkeypatch):
        # Count every resolution attempt per pending request, so a
        # double resolve is caught even though futures make it silent.
        attempts = Counter()
        original_resolve = frontend_mod._Pending.resolve

        def counting_resolve(self, outcome):
            attempts[id(self)] += 1
            original_resolve(self, outcome)

        monkeypatch.setattr(frontend_mod._Pending, "resolve", counting_resolve)

        rng = _rng("chaos-stream")
        engine = _chaos_engine("chaos-stream-engine")

        # The seeded stream: kinds shuffled so sabotage interleaves
        # with clean traffic instead of arriving in one burst.
        plan = (
            [("clean", None)] * 14
            + [("kill", None)] * 4
            + [("hang", None)] * 2
            + [("poison", SMALL_ORDER_ENCODING), ("poison", GARBAGE_ENCODING)] * 2
            + [("doa", None)] * 4   # dead-on-arrival deadlines
        )
        rng.shuffle(plan)

        async def driver():
            fe = Frontend(
                engine, metrics=engine.metrics,
                max_batch=8, max_wait_ms=2.0, workers=2, min_chunk=1,
            )
            me_private = rng.randrange(2, 2**250)

            async def client(kind, arg):
                if kind == "clean":
                    return await fe.submit_outcome("fault", ("noop",),
                                                   deadline=60.0)
                if kind == "kill":
                    return await fe.submit_outcome("fault", ("exit",),
                                                   deadline=60.0)
                if kind == "hang":
                    return await fe.submit_outcome("fault", ("sleep", 3.0),
                                                   deadline=60.0)
                if kind == "poison":
                    return await fe.submit_outcome("dh", (me_private, arg),
                                                   deadline=60.0)
                return await fe.submit_outcome("fault", ("noop",),
                                               deadline=0.001)

            outcomes = await asyncio.gather(
                *[client(kind, arg) for kind, arg in plan]
            )

            # Recovery: a clean wave after the sabotage stops, with real
            # scalar multiplications spot-checked against the math layer.
            generator = AffinePoint.generator()
            scalars = [rng.randrange(2**256) for _ in range(4)]
            wave = await asyncio.gather(
                *[fe.submit_outcome("sm", (k, generator)) for k in scalars],
                *[fe.submit_outcome("fault", ("noop",)) for _ in range(6)],
            )
            await fe.aclose()
            return fe, outcomes, wave, scalars

        fe, outcomes, wave, scalars = run(driver())
        engine.close()

        # Exactly once: one outcome per request, one resolution per
        # pending, nothing left dangling.
        assert len(outcomes) == len(plan)
        assert attempts and all(n == 1 for n in attempts.values()), (
            "a request future saw multiple resolution attempts"
        )
        assert fe.queue_depth == 0

        # Typed outcomes only, per injection kind.
        for (kind, arg), outcome in zip(plan, outcomes):
            assert isinstance(outcome, (Ok, Failed)), outcome
            if kind == "clean":
                assert (
                    isinstance(outcome, Ok)
                    and outcome.value == ("fault", "noop")
                ) or (
                    isinstance(outcome, Failed)
                    and outcome.kind in TRANSIENT_KINDS
                ), outcome
            elif kind in ("kill", "hang"):
                # Recovered to the parent's marker value, or typed
                # transient failure — never a bare crash.
                ok_marker = (
                    isinstance(outcome, Ok) and outcome.value[0] == "fault"
                )
                assert ok_marker or (
                    isinstance(outcome, Failed)
                    and outcome.kind in TRANSIENT_KINDS
                ), (kind, outcome)
            elif kind == "poison":
                assert isinstance(outcome, Failed)
                expected = (
                    KIND_SMALL_ORDER
                    if arg == SMALL_ORDER_ENCODING
                    else KIND_DECODING
                )
                assert outcome.kind in (expected, *TRANSIENT_KINDS), outcome
            else:  # dead-on-arrival deadline
                assert isinstance(outcome, Failed) or isinstance(outcome, Ok)
                if isinstance(outcome, Failed):
                    assert outcome.kind == KIND_DEADLINE, outcome

        # The sabotage actually bit (the test is not vacuous).
        kills = sum(1 for kind, _ in plan if kind in ("kill", "hang"))
        assert kills >= 6
        sup = engine.supervisor
        assert sup is not None and sup.restarts >= 1

        # Recovery: the clean wave is all Ok and bit-exact.
        assert all(isinstance(o, Ok) for o in wave), wave
        for k, outcome in zip(scalars, wave[: len(scalars)]):
            ref = scalar_mul_fourq(k, AffinePoint.generator())
            assert (outcome.value.x, outcome.value.y) == (ref.x, ref.y)
        assert engine.breaker.state == BREAKER_CLOSED


@pytest.mark.slow
class TestBreakerDegradation:
    """Starve the restart budget: closed → open → serial → half-open → closed."""

    def test_trip_degrade_recover(self):
        limiter = TokenBucket(capacity=1, refill_seconds=10_000.0)
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=0.2, metrics=MetricsRegistry()
        )
        engine = _chaos_engine(
            "breaker-degrade",
            restart_limiter=limiter,
            breaker=breaker,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        kill = [("fault", ("exit",)), ("fault", ("noop",))] * 2
        clean = [("fault", ("noop",))] * 4
        try:
            # Batch 1: crash recovered by the single restart token.
            r1 = engine.run_jobs(kill, workers=2, min_chunk=1)
            assert len(r1.results) == len(kill)
            assert breaker.state == BREAKER_CLOSED

            # Batches 2 and 3: restarts denied, two consecutive pool
            # failures — the breaker trips open.  Results still resolve
            # (serial parent recovery), the service never goes dark.
            r2 = engine.run_jobs(kill, workers=2, min_chunk=1)
            r3 = engine.run_jobs(kill, workers=2, min_chunk=1)
            for r in (r2, r3):
                assert r.results == [("fault", m) for m, in
                                     [p for _, p in kill]]
            assert breaker.state == BREAKER_OPEN
            assert engine.supervisor.denied_restarts >= 1

            # Open: the pool is not even attempted; serial degrade.
            r4 = engine.run_jobs(clean, workers=2, min_chunk=1)
            assert r4.results == [("fault", "noop")] * 4
            assert r4.stats.workers == 0

            # Refill the restart budget and let the cool-down lapse:
            # the next batch is the half-open probe and closes the
            # breaker by succeeding on a rebuilt pool.
            limiter._tokens = 1.0
            time.sleep(0.25)
            r5 = engine.run_jobs(clean, workers=2, min_chunk=1)
            assert r5.results == [("fault", "noop")] * 4
            assert breaker.state == BREAKER_CLOSED
            assert engine.supervisor.state == POOL_RUNNING
        finally:
            engine.close()
