"""Shared fixtures for the benchmark harness.

The expensive artifacts (full-program trace, scheduled flow, calibrated
technology model) are computed once per session and shared by all
benches.
"""

import pytest


@pytest.fixture(scope="session")
def loop_prog():
    """The double-and-add kernel trace (Fig. 2(b) workload)."""
    from repro.trace import trace_loop_iteration

    return trace_loop_iteration()


@pytest.fixture(scope="session")
def full_prog():
    """A full scalar-multiplication trace."""
    from repro.trace import trace_scalar_mult

    return trace_scalar_mult(k=0x1234_5678_9ABC_DEF0 << 192)


@pytest.fixture(scope="session")
def full_flow(full_prog):
    """The complete design flow on the full trace (scheduled + simulated)."""
    from repro.flow import run_flow

    return run_flow(full_prog)


@pytest.fixture(scope="session")
def tech(full_flow):
    """The 65 nm SOTB model calibrated to this flow's cycle count."""
    from repro.asic import calibrate

    return calibrate(cycles=full_flow.cycles)
