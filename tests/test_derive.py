"""Tests for the runtime endomorphism derivation (the no-magic-constants path)."""

import pytest

from repro.curve.derive import PHI_SQUARE, PSI_SQUARE, derive_endomorphisms
from repro.curve.params import SUBGROUP_ORDER_N, is_on_curve
from repro.curve.point import AffinePoint, random_subgroup_point
from repro.curve.wmodel import (
    WeierstrassModel,
    j_invariant,
    two_torsion_xs,
)
from repro.field.fp2 import fp2_conj


class TestWeierstrassModel:
    @pytest.fixture(scope="class")
    def model(self):
        return WeierstrassModel.of_fourq()

    def test_generator_maps_onto_model(self, model):
        g = AffinePoint.generator()
        w = model.from_edwards(g)
        assert model.contains(w)

    def test_roundtrip(self, model, rng):
        p = random_subgroup_point(rng)
        assert model.to_edwards(model.from_edwards(p)) == p

    def test_map_is_homomorphic_via_doubling(self, model, rng):
        """x([2]P) on the model matches mapping the doubled Edwards point."""
        from repro.curve.wmodel import x_double
        from repro.field.tower import f4, f4_in_base

        p = random_subgroup_point(rng)
        w = model.from_edwards(p)
        w2 = model.from_edwards(p + p)
        xd = x_double(model.a, model.b, f4(w[0]))
        assert f4_in_base(xd)
        assert xd[0] == w2[0]

    def test_one_rational_two_torsion(self, model):
        """E_W has exactly one rational 2-torsion point (group is Z/8 x ...)."""
        assert len(two_torsion_xs(model.a, model.b)) == 1

    def test_j_invariant_not_in_fp(self, model):
        j = j_invariant(model.a, model.b)
        assert j != fp2_conj(j)  # E is not isomorphic to its conjugate


class TestDerivation:
    def test_derivation_succeeds(self, endo):
        assert endo.lambda_phi != 0
        assert endo.lambda_psi != 0

    def test_eigenvalue_squares(self, endo):
        n = SUBGROUP_ORDER_N
        assert endo.lambda_psi**2 % n == PSI_SQUARE % n
        assert endo.lambda_phi**2 % n == PHI_SQUARE % n

    def test_psi_is_sqrt8_phi_is_sqrt_minus20(self):
        assert PSI_SQUARE == 8
        assert PHI_SQUARE == -20

    def test_phi_acts_as_eigenvalue(self, endo, rng):
        p = random_subgroup_point(rng)
        assert endo.phi(p) == endo.lambda_phi * p

    def test_psi_acts_as_eigenvalue(self, endo, rng):
        p = random_subgroup_point(rng)
        assert endo.psi(p) == endo.lambda_psi * p

    def test_additivity(self, endo, rng):
        p = random_subgroup_point(rng)
        q = random_subgroup_point(rng)
        assert endo.phi(p + q) == endo.phi(p) + endo.phi(q)
        assert endo.psi(p + q) == endo.psi(p) + endo.psi(q)

    def test_commutativity(self, endo, rng):
        p = random_subgroup_point(rng)
        assert endo.phi(endo.psi(p)) == endo.psi(endo.phi(p))

    def test_outputs_on_curve(self, endo, rng):
        p = random_subgroup_point(rng)
        for q in (endo.phi(p), endo.psi(p)):
            assert is_on_curve(q.x, q.y)

    def test_identity_fixed(self, endo):
        o = AffinePoint.identity()
        assert endo.phi(o).is_identity()
        assert endo.psi(o).is_identity()

    def test_psi_squared_is_8(self, endo, rng):
        p = random_subgroup_point(rng)
        assert endo.psi(endo.psi(p)) == 8 * p

    def test_phi_squared_is_minus_20(self, endo, rng):
        p = random_subgroup_point(rng)
        assert endo.phi(endo.phi(p)) == (SUBGROUP_ORDER_N - 20) * p

    def test_composition_eigenvalue(self, endo):
        g = AffinePoint.generator()
        assert endo.psi(endo.phi(g)) == endo.lambda_phipsi * g

    def test_cached(self):
        assert derive_endomorphisms() is derive_endomorphisms()


class TestAgainstEigenvalueOracle:
    """The isogeny maps and the eigenvalue oracle must agree everywhere
    on the subgroup — two completely independent evaluation paths."""

    def test_cross_check(self, endo, rng):
        from repro.curve.endomorphisms import EigenvalueEndomorphisms

        oracle = EigenvalueEndomorphisms(
            lambda_phi=endo.lambda_phi, lambda_psi=endo.lambda_psi
        )
        for _ in range(3):
            p = random_subgroup_point(rng)
            assert endo.phi(p) == oracle.phi(p)
            assert endo.psi(p) == oracle.psi(p)
