"""Typed per-item failure envelopes for the serving layer.

A production accelerator front-end treats invalid-input rejection as a
per-operation *outcome*, not a process-level fault: one small-order peer
key in a batch of thousands must cost exactly one error slot, never the
batch.  This module defines the failure taxonomy the
:class:`~repro.serve.engine.BatchEngine` reports:

* :class:`Ok` / :class:`Failed` — the two per-item outcome envelopes.
  Successful slots in :attr:`BatchResult.results` hold the raw value
  (backwards compatible); failed slots hold the :class:`Failed`
  envelope itself, carrying a stable ``kind`` string, the original
  message, the input-order index, and the latency spent discovering the
  failure.
* :func:`classify_exception` — maps a raised exception to its kind
  (most specific class first, ``internal`` as the catch-all).
* :meth:`Failed.to_exception` — re-materializes the failure as the
  exception class its kind names, so ``strict`` mode and
  ``BatchResult.raise_any()`` reproduce the historical raise behaviour
  even for failures that crossed a process boundary as plain data.

Chunk-level faults (a worker process dying, a chunk exceeding its time
budget) use the ``worker_crash`` / ``timeout`` kinds; they appear in
retry/requeue counters rather than per-item slots because the engine
recovers such chunks by re-running them serially in the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Type

from ..curve.encoding import DecodingError
from ..dsa.fourq_dh import SmallOrderPoint
from ..rtl.datapath import SimulationError


class BatchItemError(RuntimeError):
    """Raised for failure kinds with no dedicated exception class."""


class Overloaded(RuntimeError):
    """The serving front door refused admission: queues are full.

    Raised by :meth:`repro.serve.frontend.Frontend.submit` under the
    ``reject`` backpressure policy, and carried as the ``overloaded``
    failure kind when a queued request is shed (``shed`` policy) or a
    non-draining close abandons it.  A transient, retryable condition —
    the request was never executed.
    """


class DeadlineExceeded(RuntimeError):
    """The request's end-to-end deadline expired before it completed.

    Carried as the ``deadline`` failure kind: a request that expires
    while queued in the front door, blocked at admission, or still
    unstarted when the engine's batch budget runs out resolves with
    this typed failure instead of executing late.  The request may
    have been partially attempted (a retried chunk), but its result
    was never delivered — retrying with a larger budget is safe for
    idempotent workloads like scalar multiplication.
    """


class CircuitOpen(RuntimeError):
    """The worker-pool circuit breaker is open and fail-fast is on.

    Carried as the ``circuit_open`` failure kind when the engine is
    configured with ``circuit_mode="fail_fast"``; in the default
    ``"serial"`` mode an open breaker degrades to in-process execution
    instead and this kind never reaches callers.  Transient: the
    breaker half-opens after its reset timeout and closes again once a
    probe batch succeeds.
    """


#: Stable error-kind strings (the keys of ``BatchStats.errors_by_kind``).
KIND_SMALL_ORDER = "small_order"
KIND_DECODING = "decoding"
KIND_SIMULATION = "simulation"
KIND_VALUE = "value"
KIND_TYPE = "type"
KIND_WORKER_CRASH = "worker_crash"
KIND_TIMEOUT = "timeout"
KIND_OVERLOADED = "overloaded"
KIND_CANCELLED = "cancelled"
KIND_DEADLINE = "deadline"
KIND_CIRCUIT_OPEN = "circuit_open"
KIND_INTERNAL = "internal"

#: Classification table, most specific class first (DecodingError and
#: SmallOrderPoint are ValueError subclasses; SimulationError,
#: Overloaded, DeadlineExceeded, and CircuitOpen are RuntimeError
#: subclasses).
_CLASSIFICATION = (
    (SmallOrderPoint, KIND_SMALL_ORDER),
    (DecodingError, KIND_DECODING),
    (SimulationError, KIND_SIMULATION),
    (Overloaded, KIND_OVERLOADED),
    (DeadlineExceeded, KIND_DEADLINE),
    (CircuitOpen, KIND_CIRCUIT_OPEN),
    (ValueError, KIND_VALUE),
    (TypeError, KIND_TYPE),
)

#: kind -> exception class used to re-materialize a Failed envelope.
_KIND_TO_EXCEPTION: dict = {kind: cls for cls, kind in _CLASSIFICATION}


def classify_exception(exc: BaseException) -> str:
    """The stable kind string for a per-item exception."""
    for cls, kind in _CLASSIFICATION:
        if isinstance(exc, cls):
            return kind
    return KIND_INTERNAL


@dataclass(frozen=True)
class Ok:
    """A successful per-item outcome (``value`` is the raw result)."""

    value: Any
    index: int = -1

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Failed:
    """A typed per-item failure: the request was rejected, not the batch.

    Attributes:
        kind: stable taxonomy string (``small_order``, ``decoding``,
            ``value``, ``type``, ``simulation``, ``internal``).
        message: the original exception message.
        index: position of the failed item in the input batch.
        latency: seconds spent before the failure was detected.
    """

    kind: str
    message: str
    index: int = -1
    # Observability metadata, not identity: two runs of the same batch
    # produce equal envelopes regardless of timing.
    latency: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return False

    def exception_class(self) -> Type[Exception]:
        return _KIND_TO_EXCEPTION.get(self.kind, BatchItemError)

    def to_exception(self) -> Exception:
        """Re-materialize the failure as its original exception class."""
        return self.exception_class()(self.message)
