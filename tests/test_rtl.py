"""Tests for the bit-exact RTL models: multiplier, addsub, register file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.fp import P127
from repro.field.fp2 import fp2_add, fp2_conj, fp2_mul, fp2_neg, fp2_sub
from repro.rtl import (
    AddSubUnit,
    PipelinedMultiplier,
    PortViolation,
    RegisterFile,
    fp2_addsub_compute,
    karatsuba_fp2_multiply,
)
from repro.rtl.multiplier import MultiplierStats
from repro.trace.ops import OpKind

coord = st.integers(min_value=0, max_value=P127 - 1)
elements = st.tuples(coord, coord)


class TestMultiplierCombinational:
    """Algorithm 2 must agree with the mathematical F_{p^2} product."""

    @given(elements, elements)
    def test_matches_math(self, x, y):
        assert karatsuba_fp2_multiply(x, y) == fp2_mul(x, y)

    def test_edge_values(self):
        p1 = P127 - 1
        for x in [(0, 0), (1, 0), (0, 1), (p1, p1), (p1, 0), (0, p1)]:
            for y in [(0, 0), (1, 0), (0, 1), (p1, p1)]:
                assert karatsuba_fp2_multiply(x, y) == fp2_mul(x, y)

    def test_stats_recorded(self):
        stats = MultiplierStats()
        karatsuba_fp2_multiply((123, 456), (789, 321), stats)
        assert stats.issues == 1
        assert stats.cond_subs == 2
        assert stats.folds <= 6  # at most ~2 folds per half


class TestMultiplierPipeline:
    def test_latency_and_ii(self):
        m = PipelinedMultiplier(depth=3)
        pairs = [((i + 1, 0), (i + 1, 0)) for i in range(5)]
        outs = []
        for i in range(8):
            issue = pairs[i] if i < 5 else None
            outs.append(m.tick(issue))
        # Results appear exactly depth cycles after issue, II = 1.
        assert outs[:3] == [None, None, None]
        assert outs[3:] == [fp2_mul(p[0], p[1]) for p in pairs]
        assert not m.busy

    def test_bubble(self):
        m = PipelinedMultiplier(depth=2)
        m.tick(((2, 0), (3, 0)))
        m.tick(None)
        assert m.tick(None) == (6, 0)
        assert m.tick(None) is None


class TestAddSub:
    @given(elements, elements)
    def test_add_sub_match_math(self, a, b):
        assert fp2_addsub_compute(OpKind.ADD, a, b) == fp2_add(a, b)
        assert fp2_addsub_compute(OpKind.SUB, a, b) == fp2_sub(a, b)

    @given(elements)
    def test_neg_conj(self, a):
        assert fp2_addsub_compute(OpKind.NEG, a, None) == fp2_neg(a)
        assert fp2_addsub_compute(OpKind.CONJ, a, None) == fp2_conj(a)

    def test_rejects_mul(self):
        with pytest.raises(ValueError):
            fp2_addsub_compute(OpKind.MUL, (1, 0), (1, 0))

    def test_unit_latency(self):
        u = AddSubUnit(depth=1)
        assert u.tick((OpKind.ADD, (1, 0), (2, 0))) is None
        assert u.tick(None) == (3, 0)


class TestRegisterFile:
    def test_preload_read(self):
        rf = RegisterFile(size=4)
        rf.preload({0: (7, 0), 2: (9, 9)})
        rf.begin_cycle()
        assert rf.read(0) == (7, 0)
        assert rf.read(2) == (9, 9)

    def test_read_port_limit(self):
        rf = RegisterFile(size=8, read_ports=2)
        rf.preload({i: (i, 0) for i in range(8)})
        rf.begin_cycle()
        rf.read(0)
        rf.read(1)
        with pytest.raises(PortViolation):
            rf.read(2)

    def test_write_port_limit(self):
        rf = RegisterFile(size=8, write_ports=2)
        rf.begin_cycle()
        rf.write(0, (1, 0))
        rf.write(1, (2, 0))
        with pytest.raises(PortViolation):
            rf.write(2, (3, 0))

    def test_write_lands_at_end_of_cycle(self):
        rf = RegisterFile(size=2)
        rf.preload({0: (5, 0)})
        rf.begin_cycle()
        rf.write(0, (6, 0))
        assert rf.read(0) == (5, 0)  # read-before-write semantics
        rf.end_cycle()
        rf.begin_cycle()
        assert rf.read(0) == (6, 0)

    def test_uninitialized_read_fails(self):
        rf = RegisterFile(size=2)
        rf.begin_cycle()
        with pytest.raises(RuntimeError):
            rf.read(1)


class TestSimulatorReuse:
    """reset() regression: a reused simulator must equal fresh ones.

    The batch engine streams every request through one
    DatapathSimulator instance; any state leaking across run() calls
    (register contents, pipeline slots, port-usage high-water marks)
    would corrupt the second request or its statistics.
    """

    def _programs(self):
        import random

        from repro.flow import run_flow
        from repro.trace import trace_loop_iteration

        flows = [
            run_flow(trace_loop_iteration(random.Random(seed)))
            for seed in (0xAB, 0xCD)
        ]
        return [(f.microprogram, f.simulation) for f in flows]

    def test_back_to_back_runs_match_fresh_simulators(self):
        from repro.rtl.datapath import DatapathSimulator

        programs = self._programs()
        shared = DatapathSimulator()
        for microprogram, fresh in programs:
            sim = shared.run(microprogram, check_golden=True)
            assert sim.outputs == fresh.outputs
            assert sim.cycles == fresh.cycles
            assert sim.register_count == fresh.register_count
            assert sim.max_reads_per_cycle == fresh.max_reads_per_cycle
            assert sim.max_writes_per_cycle == fresh.max_writes_per_cycle
            assert sim.mult_stats == fresh.mult_stats
            assert sim.addsub_stats == fresh.addsub_stats

    def test_same_program_twice_is_deterministic(self):
        from repro.rtl.datapath import DatapathSimulator

        (microprogram, fresh), _ = self._programs()
        shared = DatapathSimulator()
        first = shared.run(microprogram, check_golden=True)
        second = shared.run(microprogram, check_golden=True)
        assert first.outputs == second.outputs == fresh.outputs
        assert first.cycles == second.cycles == fresh.cycles
