#!/usr/bin/env python3
"""Quickstart: FourQ scalar multiplication through the public API.

Demonstrates the core primitive of the paper — endomorphism-accelerated
variable-base scalar multiplication (Algorithm 1) — and cross-checks it
against plain double-and-add, showing the 256-to-64 iteration
reduction that FourQ's 4-dimensional decomposition buys.

Run:  python examples/quickstart.py
"""

import random
import time

from repro import (
    AffinePoint,
    SUBGROUP_ORDER_N,
    default_endomorphisms,
    scalar_mul_double_and_add,
    scalar_mul_fourq,
)
from repro.curve import default_decomposer, recode_glv_sac


def main() -> None:
    rng = random.Random(2019)
    g = AffinePoint.generator()
    k = rng.randrange(2**256)

    print("FourQ quickstart")
    print("=" * 60)
    print(f"scalar k = {hex(k)}")

    # The derived endomorphisms (computed and verified at first use).
    endo = default_endomorphisms()
    print(f"\nendomorphism eigenvalues (derived at runtime, verified):")
    print(f"  lambda_phi = {hex(endo.lambda_phi)}  (phi^2 = [-20])")
    print(f"  lambda_psi = {hex(endo.lambda_psi)}  (psi^2 = [+8])")

    # The 4-dimensional decomposition: k -> four 64-bit scalars.
    dec = default_decomposer().decompose(k)
    print(f"\n4-D decomposition (paper Algorithm 1, step 3):")
    for i, a in enumerate(dec.scalars, start=1):
        print(f"  a{i} = {hex(a)}  ({a.bit_length()} bits)")
    rec = recode_glv_sac(dec.scalars)
    print(f"recoded into {rec.length} digit pairs -> {rec.iterations} "
          f"double-and-add iterations (vs 256 for plain double-and-add)")

    # Algorithm 1 vs the reference.
    t0 = time.perf_counter()
    fast = scalar_mul_fourq(k, g)
    t_fast = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref = scalar_mul_double_and_add(k % SUBGROUP_ORDER_N, g)
    t_ref = time.perf_counter() - t0

    assert fast == ref, "Algorithm 1 disagrees with the reference!"
    print(f"\n[k]G.x = {hex(fast.x[0])} + {hex(fast.x[1])}*i")
    print(f"[k]G.y = {hex(fast.y[0])} + {hex(fast.y[1])}*i")
    print(f"\nAlgorithm 1: {t_fast*1e3:7.1f} ms   "
          f"plain double-and-add: {t_ref*1e3:7.1f} ms   "
          f"(speedup {t_ref/t_fast:.2f}x in pure Python)")
    print("results agree: OK")


if __name__ == "__main__":
    main()
