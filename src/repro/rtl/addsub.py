"""Bit-exact model of the F_{p^2} adder/subtractor unit.

Two 127-bit modular adder/subtractor lanes (one per F_{p^2} component)
with conditional correction — again no ``% p``.  Supports the four
opcodes of the control word: ADD, SUB, NEG (0 - a) and CONJ (negate
imaginary half only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..field.fp import P127
from ..field.fp2 import Fp2Raw
from ..trace.ops import OpKind


@dataclass
class AddSubStats:
    issues: int = 0


def _lane_add(a: int, b: int) -> int:
    s = a + b
    if s >= P127:
        s -= P127
    return s


def _lane_sub(a: int, b: int) -> int:
    s = a - b
    if s < 0:
        s += P127
    return s


def fp2_addsub_compute(kind: OpKind, a: Fp2Raw, b: Optional[Fp2Raw]) -> Fp2Raw:
    """One combinational pass of the adder/subtractor."""
    if kind is OpKind.ADD:
        assert b is not None
        return (_lane_add(a[0], b[0]), _lane_add(a[1], b[1]))
    if kind is OpKind.SUB:
        assert b is not None
        return (_lane_sub(a[0], b[0]), _lane_sub(a[1], b[1]))
    if kind is OpKind.NEG:
        return (_lane_sub(0, a[0]), _lane_sub(0, a[1]))
    if kind is OpKind.CONJ:
        return (a[0], _lane_sub(0, a[1]))
    raise ValueError(f"addsub unit cannot execute {kind}")


@dataclass
class AddSubUnit:
    """Pipelined wrapper (default latency 1)."""

    depth: int = 1
    stats: AddSubStats = field(default_factory=AddSubStats)
    _pipe: List[Optional[Fp2Raw]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._pipe = [None] * self.depth

    def reset(self) -> None:
        """Flush the pipeline and zero the statistics counters."""
        self._pipe = [None] * self.depth
        self.stats = AddSubStats()

    def tick(
        self, issue: Optional[Tuple[OpKind, Fp2Raw, Optional[Fp2Raw]]]
    ) -> Optional[Fp2Raw]:
        result = self._pipe[-1]
        for i in range(self.depth - 1, 0, -1):
            self._pipe[i] = self._pipe[i - 1]
        if issue is not None:
            kind, a, b = issue
            self._pipe[0] = fp2_addsub_compute(kind, a, b)
            self.stats.issues += 1
        else:
            self._pipe[0] = None
        return result

    @property
    def busy(self) -> bool:
        return any(v is not None for v in self._pipe)
