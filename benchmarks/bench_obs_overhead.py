"""E-obs — instrumentation overhead on warm-batch throughput.

The observability layer's acceptance bound: recording per-stage spans,
per-item counters, and the datapath unit profile must cost <= 5% of
warm-batch throughput.  This benchmark times the same warm batch twice
— once against a live :class:`~repro.obs.MetricsRegistry`, once
against a :class:`~repro.obs.NullRegistry` (every recording call a
no-op) — and reports the relative slowdown.

Run modes:

* ``python benchmarks/bench_obs_overhead.py`` — the acceptance
  comparison (several alternated rounds, median-of-rounds); exits
  non-zero above 5% overhead.
* ``pytest benchmarks/bench_obs_overhead.py`` — the same comparison at
  smaller sizes with a slack CI threshold (shared single-CPU
  containers jitter far more than the real overhead).
"""

from __future__ import annotations

import argparse
import random
import statistics
import sys
import time


def measure(n: int = 16, rounds: int = 5, seed: int = 0x0B5):
    """Median warm-batch wall time with live vs null metrics.

    Rounds alternate live/null on the same engines and scalars so
    drift (thermal, noisy neighbours) hits both sides equally.
    Returns ``(live_s, null_s, overhead_fraction)``.
    """
    from repro.obs import MetricsRegistry, NullRegistry
    from repro.serve import BatchEngine

    rng = random.Random(seed)
    scalars = [rng.randrange(2**256) for _ in range(n)]

    live = BatchEngine(metrics=MetricsRegistry())
    null = BatchEngine(metrics=NullRegistry())
    live.warm()
    null.warm()

    live_times, null_times = [], []
    for _ in range(rounds):
        t0 = time.perf_counter()
        live.batch_scalarmult(scalars)
        live_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        null.batch_scalarmult(scalars)
        null_times.append(time.perf_counter() - t0)

    live_s = statistics.median(live_times)
    null_s = statistics.median(null_times)
    return live_s, null_s, live_s / null_s - 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=16, help="batch size")
    parser.add_argument("--rounds", type=int, default=5,
                        help="alternated measurement rounds")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max acceptable overhead fraction")
    args = parser.parse_args(argv)

    print(f"warm batch of {args.n}, {args.rounds} alternated rounds...")
    live_s, null_s, overhead = measure(n=args.n, rounds=args.rounds)
    print(f"live registry : {live_s * 1e3:7.1f} ms/batch")
    print(f"null registry : {null_s * 1e3:7.1f} ms/batch")
    print(f"overhead      : {overhead:+.2%}")
    if overhead > args.threshold:
        print(f"FAIL: instrumentation overhead above {args.threshold:.0%}",
              file=sys.stderr)
        return 1
    print(f"PASS: <= {args.threshold:.0%}")
    return 0


# -- pytest harness ----------------------------------------------------

def test_instrumentation_overhead_bounded():
    """Live-vs-null overhead stays small (slack bound for noisy CI)."""
    live_s, null_s, overhead = measure(n=8, rounds=3)
    print(f"\n  live {live_s * 1e3:.1f} ms vs null {null_s * 1e3:.1f} ms "
          f"-> {overhead:+.1%}")
    # The true overhead is ~1%; the CI bound only guards against an
    # accidental hot-loop regression (e.g. per-cycle registry calls).
    assert overhead < 0.25


if __name__ == "__main__":
    raise SystemExit(main())
