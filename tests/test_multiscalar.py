"""Tests for multi-scalar multiplication and batch Schnorr verification.

Covers the Straus-Shamir baseline, the Pippenger bucket method and the
``method="auto"`` crossover dispatch, the soundness preconditions of
randomized batch verification (order-N subgroup membership, on-curve
validation, ``secrets.SystemRandom`` weights), and the differential
batch ≡ per-item property under ``PYTEST_SEED``.
"""

import inspect
import os
import random
import zlib
from dataclasses import replace

import pytest

from repro.curve import AffinePoint, SUBGROUP_ORDER_N
from repro.curve.multiscalar import (
    MSM_SCALAR_BITS,
    PIPPENGER_CROSSOVER,
    PIPPENGER_WINDOW_MAX,
    PIPPENGER_WINDOW_MIN,
    batch_verify_schnorr,
    in_order_n_subgroup,
    multi_scalar_mul,
    multi_scalar_mul_pippenger,
    multi_scalar_mul_straus,
    pippenger_cost_model,
    pippenger_window_bits,
    validate_verify_item,
)
from repro.curve.params import PRIME_P
from repro.curve.point import random_point, random_subgroup_point
from repro.dsa import fourq_schnorr

SEED = int(os.environ.get("PYTEST_SEED", "0x4D534D"), 0)


def _rng(tag: str) -> random.Random:
    """Per-test RNG: PYTEST_SEED diversifies, the tag decorrelates."""
    return random.Random((SEED << 32) ^ zlib.crc32(tag.encode()))


def _signed(rng, n, signers=4):
    kps = [fourq_schnorr.generate_keypair(rng=rng) for _ in range(signers)]
    return [
        (
            kps[i % signers].public,
            b"batch item %d" % i,
            fourq_schnorr.sign(kps[i % signers], b"batch item %d" % i),
        )
        for i in range(n)
    ]


class TestMultiScalar:
    def test_matches_reference(self, rng):
        pts = [random_subgroup_point(rng) for _ in range(5)]
        ks = [rng.randrange(2**256) for _ in range(5)]
        got = multi_scalar_mul(ks, pts)
        exp = AffinePoint.identity()
        for k, p in zip(ks, pts):
            exp = exp + (k % SUBGROUP_ORDER_N) * p
        assert got == exp

    def test_single_point_degenerates_to_scalar_mul(self, rng):
        p = random_subgroup_point(rng)
        k = rng.randrange(2**256)
        assert multi_scalar_mul([k], [p]) == (k % SUBGROUP_ORDER_N) * p

    def test_empty_batch(self):
        assert multi_scalar_mul([], []) == AffinePoint.identity()

    def test_identity_points_skipped(self, rng):
        p = random_subgroup_point(rng)
        got = multi_scalar_mul([7, 5], [AffinePoint.identity(), p])
        assert got == 5 * p

    def test_zero_scalars(self, rng):
        p = random_subgroup_point(rng)
        q = random_subgroup_point(rng)
        assert multi_scalar_mul([0, 0], [p, q]) == AffinePoint.identity()

    def test_cancellation(self, rng):
        p = random_subgroup_point(rng)
        got = multi_scalar_mul([3, SUBGROUP_ORDER_N - 3], [p, p])
        assert got.is_identity()

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            multi_scalar_mul([1, 2], [random_subgroup_point(rng)])

    def test_larger_batch(self, rng):
        n = 8
        pts = [random_subgroup_point(rng) for _ in range(n)]
        ks = [rng.randrange(SUBGROUP_ORDER_N) for _ in range(n)]
        got = multi_scalar_mul(ks, pts)
        exp = AffinePoint.identity()
        for k, p in zip(ks, pts):
            exp = exp + k * p
        assert got == exp


class TestBatchVerify:
    @pytest.fixture(scope="class")
    def signed_batch(self):
        rng = random.Random(0xBA7C)
        items = []
        for i in range(4):
            kp = fourq_schnorr.generate_keypair(rng=rng)
            msg = f"CAM vehicle={i}".encode()
            items.append((kp.public, msg, fourq_schnorr.sign(kp, msg)))
        return items

    def test_valid_batch_accepts(self, signed_batch, rng):
        assert batch_verify_schnorr(signed_batch, rng=rng)

    def test_empty_batch_accepts(self, rng):
        assert batch_verify_schnorr([], rng=rng)

    def test_single_item(self, signed_batch, rng):
        assert batch_verify_schnorr(signed_batch[:1], rng=rng)

    def test_forged_message_rejected(self, signed_batch, rng):
        bad = list(signed_batch)
        pub, _, sig = bad[2]
        bad[2] = (pub, b"evil payload", sig)
        assert not batch_verify_schnorr(bad, rng=rng)

    def test_tampered_s_rejected(self, signed_batch, rng):
        bad = list(signed_batch)
        pub, msg, sig = bad[0]
        bad[0] = (pub, msg, replace(sig, s=(sig.s * 2) % SUBGROUP_ORDER_N))
        assert not batch_verify_schnorr(bad, rng=rng)

    def test_swapped_keys_rejected(self, signed_batch, rng):
        bad = list(signed_batch)
        (p0, m0, s0), (p1, m1, s1) = bad[0], bad[1]
        bad[0], bad[1] = (p1, m0, s0), (p0, m1, s1)
        assert not batch_verify_schnorr(bad, rng=rng)

    def test_out_of_range_s_rejected(self, signed_batch, rng):
        bad = list(signed_batch)
        pub, msg, sig = bad[0]
        bad[0] = (pub, msg, replace(sig, s=0))
        assert not batch_verify_schnorr(bad, rng=rng)

    def test_invalid_commitment_rejected(self, signed_batch, rng):
        bad = list(signed_batch)
        pub, msg, sig = bad[0]
        bad[0] = (pub, msg, replace(sig, commit_x=(1, 1)))
        assert not batch_verify_schnorr(bad, rng=rng)


class TestMethodEquivalence:
    """Straus, Pippenger, and auto agree on every input shape."""

    @pytest.mark.parametrize("n", [1, 2, 4, 7, 8, 9, 16])
    def test_methods_agree_across_crossover(self, n):
        rng = _rng(f"methods-{n}")
        pts = [random_subgroup_point(rng) for _ in range(n)]
        ks = [rng.randrange(2**256) for _ in range(n)]
        straus = multi_scalar_mul_straus(ks, pts)
        pip = multi_scalar_mul_pippenger(ks, pts)
        auto = multi_scalar_mul(ks, pts)
        assert straus == pip == auto

    def test_methods_agree_on_degenerate_pairs(self):
        rng = _rng("degenerate")
        p = random_subgroup_point(rng)
        q = random_subgroup_point(rng)
        cases = [
            ([0] * 9, [random_subgroup_point(rng) for _ in range(9)]),
            ([7, 0, SUBGROUP_ORDER_N, 5],
             [p, q, random_subgroup_point(rng), AffinePoint.identity()]),
            ([3, SUBGROUP_ORDER_N - 3] + [0] * 8, [p, p] + [q] * 8),
        ]
        for ks, pts in cases:
            assert (
                multi_scalar_mul_straus(ks, pts)
                == multi_scalar_mul_pippenger(ks, pts)
                == multi_scalar_mul(ks, pts)
            )

    def test_explicit_method_dispatch(self):
        rng = _rng("dispatch")
        pts = [random_subgroup_point(rng) for _ in range(3)]
        ks = [rng.randrange(SUBGROUP_ORDER_N) for _ in range(3)]
        assert multi_scalar_mul(ks, pts, method="straus") == multi_scalar_mul(
            ks, pts, method="pippenger"
        )
        with pytest.raises(ValueError):
            multi_scalar_mul(ks, pts, method="bogus")

    def test_auto_counts_live_pairs_not_list_length(self):
        """Identity/zero padding must not push auto over the crossover."""
        rng = _rng("live-pairs")
        p = random_subgroup_point(rng)
        ks = [5] + [0] * (PIPPENGER_CROSSOVER + 4)
        pts = [p] + [random_subgroup_point(rng)
                     for _ in range(PIPPENGER_CROSSOVER + 4)]
        assert multi_scalar_mul(ks, pts) == 5 * p

    def test_cost_model_and_window_sane(self):
        assert pippenger_window_bits(2) >= 2
        assert pippenger_window_bits(10**9) <= 8
        m_small, a_small = pippenger_cost_model(8)
        m_large, a_large = pippenger_cost_model(256)
        assert 0 < m_small < m_large
        assert 0 < a_small < a_large


class TestTunables:
    """The module-level performance knobs are pinned, not folklore.

    ``PIPPENGER_CROSSOVER``, the window clamp, and ``MSM_SCALAR_BITS``
    are the three constants ``repro.curve.multiscalar`` exports as
    documented tunables.  These tests pin their current values and the
    invariants the rest of the stack relies on, so changing any of them
    is a deliberate, reviewed act (re-run ``benchmarks/bench_msm.py``
    first, then update the pin here).
    """

    def test_crossover_is_where_the_cost_model_says(self):
        # The pinned value.  8 is the measured wall-clock crossover on
        # the reference field arithmetic (bench_msm.py, PR 8): Straus
        # pays a per-point setup (endomorphism images + 8-entry table)
        # that Pippenger avoids entirely.
        assert PIPPENGER_CROSSOVER == 8, (
            "PIPPENGER_CROSSOVER retuned — re-run benchmarks/bench_msm.py "
            "and update this pin alongside the constant's docstring"
        )
        # The cost model backs the story that a single-digit crossover
        # is plausible: per-point cost falls as each extra point splits
        # the fixed 246-doubling chain and the bucket folds.  Within a
        # window width it falls strictly (the sawtooth at width steps —
        # n = 8, 16, ... — is the 2^c fold growing ahead of the batch),
        # and doubling the batch always wins outright.
        per_point = {
            n: pippenger_cost_model(n)[0] / n
            for n in range(1, 8 * PIPPENGER_CROSSOVER + 1)
        }
        for n in range(1, 8 * PIPPENGER_CROSSOVER):
            if pippenger_window_bits(n) == pippenger_window_bits(n + 1):
                assert per_point[n] > per_point[n + 1], (
                    "pippenger_cost_model lost its economies of scale", n
                )
        for n in range(1, 4 * PIPPENGER_CROSSOVER + 1):
            assert per_point[2 * n] < per_point[n], n
        # ...and by the crossover the shared doubling chain — the fixed
        # cost that makes tiny batches a bad deal — is a small minority
        # of the total, i.e. already amortized.
        doubling_mults = 7 * MSM_SCALAR_BITS
        total_at_crossover = pippenger_cost_model(PIPPENGER_CROSSOVER)[0]
        assert doubling_mults < total_at_crossover / 4

    def test_auto_dispatch_switches_exactly_at_the_crossover(self, monkeypatch):
        # Spy on both strategies; auto must flip from Straus to
        # Pippenger at exactly PIPPENGER_CROSSOVER live pairs.
        import repro.curve.multiscalar as msm

        calls = []
        real_straus = msm.multi_scalar_mul_straus
        real_pip = msm.multi_scalar_mul_pippenger
        monkeypatch.setattr(
            msm, "multi_scalar_mul_straus",
            lambda ks, pts, **kw: (calls.append("straus"),
                                   real_straus(ks, pts, **kw))[1],
        )
        monkeypatch.setattr(
            msm, "multi_scalar_mul_pippenger",
            lambda ks, pts, **kw: (calls.append("pippenger"),
                                   real_pip(ks, pts, **kw))[1],
        )
        rng = _rng("tunable-dispatch")
        for n in (PIPPENGER_CROSSOVER - 1, PIPPENGER_CROSSOVER):
            pts = [random_subgroup_point(rng) for _ in range(n)]
            ks = [rng.randrange(1, SUBGROUP_ORDER_N) for _ in range(n)]
            msm.multi_scalar_mul(ks, pts)
        assert calls == ["straus", "pippenger"]

    def test_window_bits_respects_the_documented_clamp(self):
        assert (PIPPENGER_WINDOW_MIN, PIPPENGER_WINDOW_MAX) == (2, 8), (
            "window clamp retuned — re-run benchmarks/bench_msm.py and "
            "update this pin"
        )
        widths = [pippenger_window_bits(n) for n in range(1, 5000)]
        assert all(
            PIPPENGER_WINDOW_MIN <= w <= PIPPENGER_WINDOW_MAX for w in widths
        )
        # Monotone non-decreasing: more points never shrink the window.
        assert all(a <= b for a, b in zip(widths, widths[1:]))
        assert pippenger_window_bits(1) == PIPPENGER_WINDOW_MIN
        assert pippenger_window_bits(10**9) == PIPPENGER_WINDOW_MAX

    def test_scalar_bits_matches_the_subgroup_order(self):
        assert MSM_SCALAR_BITS == 246
        # N is a 246-bit prime: every reduced scalar fits, and the
        # window heuristic's bit budget is not an underestimate.
        assert SUBGROUP_ORDER_N.bit_length() == MSM_SCALAR_BITS
        # The cost model defaults to the same budget: passing it
        # explicitly must be a no-op.
        assert pippenger_cost_model(16) == pippenger_cost_model(
            16, bits=MSM_SCALAR_BITS
        )


class TestSubgroupValidation:
    """The soundness precondition: every point in the order-N subgroup."""

    def test_generator_and_identity_are_members(self):
        assert in_order_n_subgroup(AffinePoint.generator())
        assert in_order_n_subgroup(AffinePoint.identity())

    def test_random_cofactor_point_is_not_member(self):
        # A uniformly random curve point carries a 392-torsion component
        # with probability 1 - 1/392; the fixed seed pins a witness.
        assert not in_order_n_subgroup(random_point(random.Random(0xC0F)))

    def test_low_order_point_is_not_member(self):
        # (0, -1) has order 2: the classic small-subgroup confinement
        # point that a cofactor-blind batch verifier would accept.
        low = AffinePoint((0, 0), (PRIME_P - 1, 0))
        assert not in_order_n_subgroup(low)

    def test_validate_rejects_off_subgroup_public(self):
        rng = _rng("off-subgroup")
        (public, msg, sig), = _signed(rng, 1)
        assert validate_verify_item(public, sig) is not None
        assert validate_verify_item(random_point(rng), sig) is None

    def test_validate_rejects_malformed(self):
        rng = _rng("malformed")
        (public, msg, sig), = _signed(rng, 1)
        assert validate_verify_item(None, sig) is None
        assert validate_verify_item(public, None) is None
        assert validate_verify_item(public, replace(sig, s=0)) is None
        assert validate_verify_item(
            public, replace(sig, s=SUBGROUP_ORDER_N)
        ) is None
        assert validate_verify_item(public, replace(sig, commit_x=(1, 1))) is None

    def test_batch_rejects_off_subgroup_public(self):
        rng = _rng("batch-subgroup")
        items = _signed(rng, 3)
        _, msg, sig = items[1]
        items[1] = (random_point(rng), msg, sig)
        assert not batch_verify_schnorr(items, rng=rng)

    def test_batch_rejects_low_order_public(self):
        rng = _rng("batch-low-order")
        items = _signed(rng, 2)
        _, msg, sig = items[0]
        items[0] = (AffinePoint((0, 0), (PRIME_P - 1, 0)), msg, sig)
        assert not batch_verify_schnorr(items, rng=rng)


class TestBatchSoundness:
    def test_forged_item_hidden_in_64_always_rejected(self):
        rng = _rng("forged-64")
        items = _signed(rng, 64)
        public, _, sig = items[37]
        items[37] = (public, b"forged payload", sig)
        # One shot is sound with probability 1 - 2^-128 already; three
        # independently weighted runs guard the test against a weight
        # -generation bug that a single draw could mask.
        for trial in range(3):
            assert not batch_verify_schnorr(items, rng=_rng(f"w{trial}"))

    def test_differential_batch_matches_per_item(self):
        """Randomized mixes: the batch verdict is the AND of per-item."""
        rng = _rng("differential")
        for _ in range(4):
            items = _signed(rng, rng.randrange(1, 7))
            if rng.random() < 0.5:  # sometimes plant a forgery
                i = rng.randrange(len(items))
                public, _, sig = items[i]
                items[i] = (public, b"tampered", sig)
            expected = all(
                fourq_schnorr.verify(pub, msg, sig) for pub, msg, sig in items
            )
            assert batch_verify_schnorr(items, rng=rng) is expected

    def test_default_weights_come_from_system_random(self):
        """Regression pin for the weak-RNG fix: with no injected rng the
        weights must come from the OS CSPRNG, not ``random``."""
        source = inspect.getsource(batch_verify_schnorr)
        assert "SystemRandom" in source
        sig = inspect.signature(batch_verify_schnorr)
        assert sig.parameters["rng"].default is None
