"""repro — reproduction of "FourQ on ASIC: Breaking Speed Records for
Elliptic Curve Scalar Multiplication" (Awano & Ikeda, DATE 2019).

The package implements the paper's entire stack in Python:

* :mod:`repro.field` / :mod:`repro.curve` — exact FourQ arithmetic,
  runtime-derived endomorphisms, 4-D scalar decomposition, and the
  paper's Algorithm 1;
* :mod:`repro.trace` — the Python-execution-trace recording of
  micro-operations (design-flow steps 1-2);
* :mod:`repro.sched` — job-shop instruction scheduling with list and
  constraint-programming solvers (step 3);
* :mod:`repro.isa` / :mod:`repro.rtl` — control-signal generation and
  a cycle-accurate, bit-exact datapath simulator (step 4 + verification);
* :mod:`repro.asic` — calibrated 65 nm SOTB frequency/energy/area
  models reproducing Fig. 4 and Table II;
* :mod:`repro.baselines` / :mod:`repro.dsa` / :mod:`repro.hashes` —
  P-256, Curve25519, SHA-256, ECDSA and FourQ-Schnorr for the
  application-level comparisons.

Quickstart::

    from repro import AffinePoint, scalar_mul_fourq
    result = scalar_mul_fourq(k, AffinePoint.generator())

Full design flow::

    from repro import run_flow, trace_scalar_mult
    flow = run_flow(trace_scalar_mult(k=12345))
    print(flow.report())
"""

from .curve import (
    AffinePoint,
    FourQDecomposer,
    SUBGROUP_ORDER_N,
    default_endomorphisms,
    recode_glv_sac,
    scalar_mul_double_and_add,
    scalar_mul_double_base,
    scalar_mul_fourq,
    scalar_mul_wnaf,
    verify_parameters,
)
from .dse import (
    DesignPoint,
    evaluate_design_point,
    render_design_points,
    render_occupancy,
    sweep_design_space,
)
from .flow import FlowResult, run_flow
from .trace import trace_loop_iteration, trace_scalar_mult

__version__ = "1.1.0"

__all__ = [
    "AffinePoint",
    "DesignPoint",
    "FlowResult",
    "FourQDecomposer",
    "SUBGROUP_ORDER_N",
    "__version__",
    "default_endomorphisms",
    "recode_glv_sac",
    "run_flow",
    "scalar_mul_double_and_add",
    "scalar_mul_double_base",
    "scalar_mul_fourq",
    "evaluate_design_point",
    "render_design_points",
    "render_occupancy",
    "scalar_mul_wnaf",
    "sweep_design_space",
    "trace_loop_iteration",
    "trace_scalar_mult",
    "verify_parameters",
]
