"""Throughput/latency accounting for the batch scalar-multiplication engine.

A :class:`BatchStats` summarizes one batch: wall-clock throughput,
per-operation latency quantiles, flow-artifact cache effectiveness, and
the simulated hardware cost (cycles per operation) — the numbers a
serving deployment watches, next to the paper's own headline (one SM in
10.1 µs on the fabricated chip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


@dataclass
class BatchStats:
    """Aggregated statistics for one batch call.

    Attributes:
        ops: operations completed.
        wall_seconds: end-to-end wall-clock time for the batch.
        latencies: per-op latency samples in seconds (one per op; in
            worker fan-out mode these are measured inside the workers).
        cache_hits / cache_misses: flow-artifact cache counters
            attributable to this batch.
        fallbacks: ops where the cached fast path failed a check and
            the engine recomputed the full flow (self-healing path).
        simulated_cycles: total datapath cycles across the batch.
        workers: worker processes used (0 = serial in-process).
    """

    ops: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    fallbacks: int = 0
    simulated_cycles: int = 0
    workers: int = 0

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def p50_latency(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies, 99)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def cycles_per_op(self) -> float:
        return self.simulated_cycles / self.ops if self.ops else 0.0

    def merge(self, other: "BatchStats") -> None:
        """Fold a worker's partial stats into this aggregate."""
        self.ops += other.ops
        self.latencies.extend(other.latencies)
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.fallbacks += other.fallbacks
        self.simulated_cycles += other.simulated_cycles

    def report(self) -> str:
        lines = [
            f"ops             : {self.ops}"
            + (f" (x{self.workers} workers)" if self.workers else ""),
            f"wall time       : {self.wall_seconds * 1e3:.1f} ms",
            f"throughput      : {self.ops_per_second:.2f} ops/s",
            f"latency p50/p99 : {self.p50_latency * 1e3:.1f} / "
            f"{self.p99_latency * 1e3:.1f} ms",
            f"cache hit rate  : {self.cache_hit_rate:.0%} "
            f"({self.cache_hits} hit / {self.cache_misses} miss"
            + (f" / {self.fallbacks} fallback)" if self.fallbacks else ")"),
            f"cycles per op   : {self.cycles_per_op:.0f} simulated",
        ]
        return "\n".join(lines)
