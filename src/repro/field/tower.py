"""The tower field F_{p^4} = F_{p^2}[w] / (w^2 - xi).

The endomorphism derivation (:mod:`repro.curve.derive`) occasionally
needs arithmetic one level above F_{p^2}: the kernel points of FourQ's
degree-5 isogeny have x-coordinates in F_{p^4} (as Galois-conjugate
pairs), even though the isogeny itself is defined over F_{p^2}.

Elements are ``(a, b)`` pairs of raw F_{p^2} values representing
``a + b*w``.  The non-residue ``xi`` is chosen deterministically as the
first non-square of the form ``small + i`` so that derivations are
reproducible run to run.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .fp import P127
from .fp2 import (
    Fp2Raw,
    fp2_add,
    fp2_inv,
    fp2_is_square,
    fp2_mul,
    fp2_neg,
    fp2_sqr,
    fp2_sub,
)

Fp4Raw = Tuple[Fp2Raw, Fp2Raw]


def _find_nonresidue() -> Fp2Raw:
    """Deterministic non-square in F_{p^2} (smallest c with c + i non-square)."""
    c = 0
    while True:
        cand = (c, 1)
        if not fp2_is_square(cand):
            return cand
        c += 1


#: The quadratic non-residue defining the tower.
XI: Fp2Raw = _find_nonresidue()

F4_ZERO: Fp4Raw = ((0, 0), (0, 0))
F4_ONE: Fp4Raw = ((1, 0), (0, 0))

#: Multiplicative group order of F_{p^4} plus one.
Q4 = P127 ** 4


def f4(a: Fp2Raw) -> Fp4Raw:
    """Embed an F_{p^2} element into F_{p^4}."""
    return (a, (0, 0))


def f4_in_base(x: Fp4Raw) -> bool:
    """True iff x lies in the F_{p^2} subfield (w-component zero)."""
    return x[1] == (0, 0)


def f4_add(x: Fp4Raw, y: Fp4Raw) -> Fp4Raw:
    return (fp2_add(x[0], y[0]), fp2_add(x[1], y[1]))


def f4_sub(x: Fp4Raw, y: Fp4Raw) -> Fp4Raw:
    return (fp2_sub(x[0], y[0]), fp2_sub(x[1], y[1]))


def f4_neg(x: Fp4Raw) -> Fp4Raw:
    return (fp2_neg(x[0]), fp2_neg(x[1]))


def f4_mul(x: Fp4Raw, y: Fp4Raw) -> Fp4Raw:
    a, b = x
    c, d = y
    ac = fp2_mul(a, c)
    bd = fp2_mul(b, d)
    # (a + bw)(c + dw) = ac + xi*bd + (ad + bc) w
    return (
        fp2_add(ac, fp2_mul(XI, bd)),
        fp2_add(fp2_mul(a, d), fp2_mul(b, c)),
    )


def f4_sqr(x: Fp4Raw) -> Fp4Raw:
    return f4_mul(x, x)


def f4_inv(x: Fp4Raw) -> Fp4Raw:
    """Inverse via the norm down to F_{p^2}: (a+bw)^-1 = (a-bw)/(a^2 - xi b^2)."""
    a, b = x
    nrm = fp2_sub(fp2_sqr(a), fp2_mul(XI, fp2_sqr(b)))
    ni = fp2_inv(nrm)
    return (fp2_mul(a, ni), fp2_neg(fp2_mul(b, ni)))


def f4_pow(x: Fp4Raw, e: int) -> Fp4Raw:
    if e < 0:
        return f4_pow(f4_inv(x), -e)
    r = F4_ONE
    while e:
        if e & 1:
            r = f4_mul(r, x)
        x = f4_sqr(x)
        e >>= 1
    return r


def f4_is_square(x: Fp4Raw) -> bool:
    if x == F4_ZERO:
        return True
    return f4_pow(x, (Q4 - 1) // 2) == F4_ONE


_TS_NONSQUARE: Optional[Fp4Raw] = None


def _ts_nonsquare() -> Fp4Raw:
    """A fixed non-square of F_{p^4} for Tonelli-Shanks (found once)."""
    global _TS_NONSQUARE
    if _TS_NONSQUARE is None:
        c = 0
        while True:
            cand: Fp4Raw = ((c, 1), (1, 0))
            if not f4_is_square(cand):
                _TS_NONSQUARE = cand
                break
            c += 1
    return _TS_NONSQUARE


def f4_sqrt(x: Fp4Raw) -> Optional[Fp4Raw]:
    """Square root in F_{p^4} via Tonelli-Shanks, or None for a non-square.

    The 2-adic valuation of ``p^4 - 1`` is 129 (p + 1 = 2^127), so the
    generic Tonelli-Shanks loop is required here — the shortcut
    exponentiations used in the lower fields do not apply.
    """
    if x == F4_ZERO:
        return F4_ZERO
    if not f4_is_square(x):
        return None
    q = Q4 - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = _ts_nonsquare()
    m = s
    c = f4_pow(z, q)
    t = f4_pow(x, q)
    r = f4_pow(x, (q + 1) // 2)
    while t != F4_ONE:
        i, tt = 0, t
        while tt != F4_ONE:
            tt = f4_sqr(tt)
            i += 1
        b = c
        for _ in range(m - i - 1):
            b = f4_sqr(b)
        m = i
        c = f4_sqr(b)
        t = f4_mul(t, c)
        r = f4_mul(r, b)
    return r
