"""Tests for the 4-dimensional scalar decomposition."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curve.decompose import (
    FourQDecomposer,
    phi_eigenvalue_candidates,
    psi_eigenvalue_candidates,
)
from repro.curve.params import SUBGROUP_ORDER_N

scalars256 = st.integers(min_value=0, max_value=2**256 - 1)


class TestEigenvalueCandidates:
    def test_phi_candidates_square_to_minus_5(self):
        for r in phi_eigenvalue_candidates():
            assert r * r % SUBGROUP_ORDER_N == (-5) % SUBGROUP_ORDER_N

    def test_psi_candidates_square_to_2(self):
        for r in psi_eigenvalue_candidates():
            assert r * r % SUBGROUP_ORDER_N == 2

    def test_candidates_are_negatives(self):
        a, b = phi_eigenvalue_candidates()
        assert (a + b) % SUBGROUP_ORDER_N == 0


class TestDecomposerSetup:
    def test_default_construction(self):
        dec = FourQDecomposer()
        assert dec.max_scalar_bits <= 66

    def test_basis_is_in_lattice(self):
        dec = FourQDecomposer()
        lams = (1, dec.lambda_phi, dec.lambda_psi, dec.lambda_phipsi)
        for row in dec.basis:
            assert sum(v * l for v, l in zip(row, lams)) % dec.n == 0

    def test_basis_entries_are_62_bits(self):
        """The paper's '64-bit scalars' rest on a ~N^(1/4) = 2^62 basis."""
        dec = FourQDecomposer()
        worst = max(abs(x) for row in dec.basis for x in row)
        assert worst.bit_length() <= 63


class TestDecompose:
    @pytest.fixture(scope="class")
    def dec(self):
        return FourQDecomposer()

    @given(scalars256)
    @settings(max_examples=50)
    def test_recomposition(self, k):
        dec = FourQDecomposer()
        d = dec.decompose(k)
        assert dec.recompose(d.scalars) == k % SUBGROUP_ORDER_N

    @given(scalars256)
    @settings(max_examples=50)
    def test_width_positivity_parity(self, k):
        dec = FourQDecomposer()
        d = dec.decompose(k)
        a1, a2, a3, a4 = d.scalars
        assert a1 % 2 == 1
        for a in d.scalars:
            assert a > 0
            assert a.bit_length() <= dec.max_scalar_bits

    def test_paper_width_claim(self, dec):
        """Sub-scalars are 64-bit, exactly as the paper states."""
        assert dec.max_scalar_bits == 64

    def test_zero_scalar(self, dec):
        d = dec.decompose(0)
        assert dec.recompose(d.scalars) == 0
        assert all(a > 0 for a in d.scalars)  # offsets keep positivity

    def test_scalar_equal_n(self, dec):
        d = dec.decompose(SUBGROUP_ORDER_N)
        assert dec.recompose(d.scalars) == 0

    def test_max_bits_property(self, dec):
        d = dec.decompose(12345)
        assert d.max_bits == max(s.bit_length() for s in d.scalars)

    def test_iteration_protocol(self, dec):
        d = dec.decompose(99)
        assert tuple(d) == d.scalars

    def test_deterministic(self, dec):
        assert dec.decompose(777).scalars == dec.decompose(777).scalars

    def test_matches_derived_eigenvalues(self, endo, decomposer):
        """Decomposer built from the derived endomorphism eigenvalues."""
        k = 0xDEADBEEF << 200
        d = decomposer.decompose(k)
        lams = (1, endo.lambda_phi, endo.lambda_psi, endo.lambda_phipsi)
        total = sum(a * l for a, l in zip(d.scalars, lams))
        assert total % SUBGROUP_ORDER_N == k % SUBGROUP_ORDER_N


class TestEigenvalueSignChoices:
    """All four (lambda_phi, lambda_psi) sign combinations yield valid
    decomposers — the lattice is short for each conjugate pair."""

    def test_all_sign_combinations(self):
        from repro.curve.decompose import (
            phi_eigenvalue_candidates,
            psi_eigenvalue_candidates,
        )

        k = 0xFEE1 << 230
        for lp in phi_eigenvalue_candidates():
            for ls in psi_eigenvalue_candidates():
                dec = FourQDecomposer(lambda_phi=lp, lambda_psi=ls)
                assert dec.max_scalar_bits <= 66
                d = dec.decompose(k)
                assert dec.recompose(d.scalars) == k % SUBGROUP_ORDER_N

    def test_derived_pair_is_one_of_the_candidates(self, endo):
        from repro.curve.decompose import (
            phi_eigenvalue_candidates,
            psi_eigenvalue_candidates,
        )
        from repro.curve.params import SUBGROUP_ORDER_N as N

        # The derived eigenvalues are 2x the sqrt(-5)/sqrt(2) roots
        # (phi, psi have the extra tau/tau-dual factor of 2).
        phi_roots = {2 * r % N for r in phi_eigenvalue_candidates()}
        psi_roots = {2 * r % N for r in psi_eigenvalue_candidates()}
        assert endo.lambda_phi in phi_roots
        assert endo.lambda_psi in psi_roots
