"""Seeded chaos tests: sabotage mid-stream, assert exactly-once resolution."""
