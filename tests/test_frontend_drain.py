"""``Frontend.aclose(drain=True)`` racing a crowd of submitters.

The net server's graceful drain (docs/serving.md, docs/protocol.md)
leans on one Frontend contract: whatever the interleaving of
``submit`` coroutines and a concurrent ``aclose(drain=True)``,

* every future that was admitted resolves **exactly once** — with a
  result or a typed failure, never silently dropped, never twice;
* every submitter that arrives after close is refused with
  :class:`FrontendClosed` at the door — not enqueued into a lane that
  will never flush;
* the tally balances: ``admitted == resolved`` and
  ``admitted + refused == attempted``.

Schedules are property-style, drawn from ``PYTEST_SEED`` (default
pinned): ``PYTEST_SEED=12345 pytest tests/test_frontend_drain.py``
reproduces a CI failure exactly.
"""

import asyncio
import os
import random
import time
import zlib

import pytest

from repro.serve import (
    BatchResult,
    BatchStats,
    Failed,
    Frontend,
    FrontendClosed,
    FrontendConfig,
    Ok,
    Overloaded,
)
from repro.obs import MetricsRegistry

SEED = int(os.environ.get("PYTEST_SEED", "0xF10C"), 0)


def _rng(tag: str) -> random.Random:
    return random.Random((SEED << 32) ^ zlib.crc32(tag.encode()))


class StubEngine:
    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.jobs_seen = 0

    def run_jobs(self, jobs, workers=0, dedup=True, strict=False,
                 min_chunk=None, deadline=None):
        self.jobs_seen += len(jobs)
        if self.delay:
            time.sleep(self.delay)
        return BatchResult(
            results=[("echo", p) for _, p in jobs],
            stats=BatchStats(ops=len(jobs)),
        )


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def _make_frontend(stub, **kwargs):
    defaults = {"max_batch": 4, "max_wait_ms": 1.0, "max_queue": 256}
    defaults.update(kwargs)
    return Frontend(stub, config=FrontendConfig(**defaults),
                    metrics=MetricsRegistry())


async def _race_once(rng, *, n_submitters, engine_delay, close_after):
    """One schedule: n submitters with jittered arrivals vs one drain.

    Returns (resolved, refused, exploded) counts; the caller asserts
    the ledger balances.
    """
    stub = StubEngine(delay=engine_delay)
    fe = _make_frontend(stub)
    resolved = refused = 0
    outcomes = []

    async def submitter(i):
        nonlocal resolved, refused
        await asyncio.sleep(rng.uniform(0.0, 2.5 * close_after))
        try:
            out = await fe.submit_outcome("sm", (i, None))
        except FrontendClosed:
            refused += 1
            return
        except Overloaded:
            # Legitimate under tiny queues; counts as resolved-at-door.
            refused += 1
            return
        resolved += 1
        outcomes.append((i, out))

    async def closer():
        await asyncio.sleep(close_after)
        await fe.aclose(drain=True)

    await asyncio.gather(closer(), *[submitter(i)
                                     for i in range(n_submitters)])
    return fe, stub, resolved, refused, outcomes


class TestDrainRace:
    def test_every_admitted_future_resolves_exactly_once(self):
        rng = _rng("drain-race")
        for round_no in range(8):
            n = rng.randrange(8, 40)
            fe, stub, resolved, refused, outcomes = run(_race_once(
                rng,
                n_submitters=n,
                engine_delay=rng.choice([0.0, 0.001, 0.005]),
                close_after=rng.uniform(0.001, 0.03),
            ))
            # The ledger balances: nobody vanished, nobody doubled.
            assert resolved + refused == n, (round_no, resolved, refused)
            ids = [i for i, _ in outcomes]
            assert len(ids) == len(set(ids)), "a future resolved twice"
            # Whatever resolved carries a real outcome envelope.
            for i, out in outcomes:
                assert (
                    isinstance(out, Ok) and out.value == ("echo", (i, None))
                ) or isinstance(out, Failed), (i, out)
            # And the frontend's own books agree.
            assert fe.stats.submitted == resolved
            assert fe.stats.completed + fe.stats.failed == resolved

    def test_late_submitters_get_frontend_closed(self):
        async def body():
            stub = StubEngine()
            fe = _make_frontend(stub)
            assert await fe.submit("sm", (1, None)) == ("echo", (1, None))
            await fe.aclose(drain=True)
            with pytest.raises(FrontendClosed):
                await fe.submit("sm", (2, None))
            with pytest.raises(FrontendClosed):
                await fe.submit_outcome("sm", (3, None))

        run(body())

    def test_drain_flushes_the_queue_not_just_inflight(self):
        # Pile requests into the lane with a slow engine, close with
        # drain=True while most are still queued: all must resolve with
        # echoes (the drain flushed them), none with cancellations.
        async def body():
            stub = StubEngine(delay=0.01)
            fe = _make_frontend(stub, max_batch=2)
            futs = [
                asyncio.ensure_future(fe.submit_outcome("sm", (i, None)))
                for i in range(12)
            ]
            await asyncio.sleep(0.005)  # first flush in flight, rest queued
            await fe.aclose(drain=True)
            outcomes = await asyncio.gather(*futs)
            echoes = [o for o in outcomes
                      if isinstance(o, Ok) and o.value[0] == "echo"]
            assert len(echoes) == 12, outcomes
            assert stub.jobs_seen == 12

        run(body())

    def test_seeded_interleavings_with_concurrent_closers(self):
        # The cruellest schedule: two aclose() callers racing each
        # other *and* the submitters.  aclose must be idempotent and
        # the ledger must still balance.
        rng = _rng("double-close")
        for _ in range(4):
            async def body():
                stub = StubEngine(delay=0.002)
                fe = _make_frontend(stub)
                resolved = refused = 0

                async def submitter(i):
                    nonlocal resolved, refused
                    await asyncio.sleep(rng.uniform(0.0, 0.02))
                    try:
                        await fe.submit("sm", (i, None))
                    except (FrontendClosed, Overloaded):
                        refused += 1
                    else:
                        resolved += 1

                async def closer(delay):
                    await asyncio.sleep(delay)
                    await fe.aclose(drain=True)

                n = rng.randrange(6, 24)
                await asyncio.gather(
                    closer(rng.uniform(0.0, 0.01)),
                    closer(rng.uniform(0.0, 0.01)),
                    *[submitter(i) for i in range(n)],
                )
                assert resolved + refused == n
                assert fe.closed

            run(body())

    def test_drain_false_still_resolves_typed(self):
        # drain=False abandons the queue — but "abandon" must mean a
        # typed cancellation outcome, never an unresolved future.
        async def body():
            stub = StubEngine(delay=0.02)
            fe = _make_frontend(stub, max_batch=2)
            futs = [
                asyncio.ensure_future(fe.submit_outcome("sm", (i, None)))
                for i in range(8)
            ]
            await asyncio.sleep(0.005)
            await fe.aclose(drain=False)
            outcomes = await asyncio.gather(*futs, return_exceptions=True)
            assert len(outcomes) == 8
            for o in outcomes:
                ok = isinstance(o, Ok)
                typed = isinstance(o, Failed)
                refused_ = isinstance(o, (FrontendClosed, Overloaded))
                assert ok or typed or refused_, o

        run(body())
