"""Microcode assembly: schedule + allocation -> program ROM contents.

This is Step 4 of the paper's flow: "According to the scheduled
results, control signals for the datapath [are] automatically
generated."  A :class:`ControlWord` holds everything the datapath needs
in one cycle: what each functional unit issues (with operand sources:
register file ports or forwarding paths) and which results are written
back to which registers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sched.jobshop import JobShopProblem
from ..sched.schedule import Schedule
from ..trace.ops import MicroOp, OpKind, Unit
from .regalloc import Allocation, allocate_registers


class OperandSource(enum.Enum):
    """Where a unit input comes from in a given cycle."""

    REGISTER = "rf"
    FORWARD_MULT = "fwd_mult"
    FORWARD_ADDSUB = "fwd_addsub"


@dataclass(frozen=True)
class Operand:
    source: OperandSource
    register: int = -1  # valid when source is REGISTER

    def render(self) -> str:
        if self.source is OperandSource.REGISTER:
            return f"r{self.register}"
        return "M_out" if self.source is OperandSource.FORWARD_MULT else "S_out"


@dataclass(frozen=True)
class UnitIssue:
    """One functional-unit issue: the op and its operand routing."""

    kind: OpKind
    operands: Tuple[Operand, ...]
    dest_uid: int

    def render(self) -> str:
        args = ", ".join(o.render() for o in self.operands)
        return f"{self.kind.value}({args})"


@dataclass(frozen=True)
class Writeback:
    register: int
    unit: Unit
    uid: int


@dataclass
class ControlWord:
    """Control signals for one clock cycle."""

    cycle: int
    mult: Optional[UnitIssue] = None
    addsub: Optional[UnitIssue] = None
    writebacks: Tuple[Writeback, ...] = ()


@dataclass
class MicroProgram:
    """The assembled program: ROM image + register-file preload + outputs."""

    words: List[ControlWord]
    preload: Dict[int, Tuple[int, int]]
    register_count: int
    outputs: Dict[str, int]          # output name -> register
    golden: Dict[int, Tuple[int, int]]  # uid -> expected value (self-check)
    uid_reg: Dict[int, int]

    @property
    def cycles(self) -> int:
        return len(self.words)

    @property
    def rom_bits_per_word(self) -> int:
        """Width of one control word in the program ROM.

        Fields: 2 unit enables + 2x2 operand source selects (2 bits) +
        4 read addresses + 3-bit addsub opcode + 2 writeback enables +
        2 write addresses.
        """
        addr = max(1, math.ceil(math.log2(max(self.register_count, 2))))
        return 2 + 4 * 2 + 4 * addr + 3 + 2 + 2 * addr

    @property
    def rom_kilobits(self) -> float:
        return self.cycles * self.rom_bits_per_word / 1000.0


def assemble(
    problem: JobShopProblem,
    schedule: Schedule,
    trace: Sequence[MicroOp],
    outputs: Sequence[int],
    output_names: Optional[Dict[int, str]] = None,
) -> MicroProgram:
    """Assemble a validated schedule into a microprogram.

    Raises ScheduleError (via validate) or ValueError on inconsistency.
    """
    from ..sched.jobshop import resolve_select_chosen

    schedule.validate()
    alloc = allocate_registers(problem, schedule, trace, outputs)
    lat = problem.machine.latency
    start = schedule.start
    op_of_uid = {op.uid: op for op in trace}

    n_cycles = schedule.makespan + 1
    words = [ControlWord(cycle=c) for c in range(n_cycles)]

    unit_result_uid: Dict[Tuple[Unit, int], int] = {}
    for t in problem.tasks:
        unit_result_uid[(t.unit, start[t.index] + lat(t.unit))] = t.uid

    for t in problem.tasks:
        op = op_of_uid[t.uid]
        cyc = start[t.index]
        operands: List[Operand] = []
        srcs = op.srcs if op.kind not in (OpKind.SQR,) else (op.srcs[0], op.srcs[0])
        for s in srcs:
            s = resolve_select_chosen(op_of_uid, s)
            producer_idx = problem.uid_to_index.get(s)
            if producer_idx is not None:
                p_unit = problem.tasks[producer_idx].unit
                avail = start[producer_idx] + lat(p_unit)
                if problem.machine.forwarding and cyc == avail:
                    operands.append(
                        Operand(
                            source=OperandSource.FORWARD_MULT
                            if p_unit is Unit.MULTIPLIER
                            else OperandSource.FORWARD_ADDSUB
                        )
                    )
                    continue
            operands.append(
                Operand(source=OperandSource.REGISTER, register=alloc.reg_of[s])
            )
        issue = UnitIssue(kind=op.kind, operands=tuple(operands), dest_uid=t.uid)
        word = words[cyc]
        if t.unit is Unit.MULTIPLIER:
            if word.mult is not None:
                raise ValueError(f"multiplier double-issue at cycle {cyc}")
            word.mult = issue
        else:
            if word.addsub is not None:
                raise ValueError(f"addsub double-issue at cycle {cyc}")
            word.addsub = issue
        wb_cycle = cyc + lat(t.unit)
        wb = Writeback(register=alloc.reg_of[t.uid], unit=t.unit, uid=t.uid)
        words[wb_cycle].writebacks = words[wb_cycle].writebacks + (wb,)

    names = output_names or {}
    out_map = {}
    for uid in outputs:
        name = names.get(uid) or op_of_uid[uid].name or f"v{uid}"
        out_map[name] = alloc.reg_of[resolve_select_chosen(op_of_uid, uid)]

    golden = {op.uid: op.value for op in trace}
    return MicroProgram(
        words=words,
        preload=dict(alloc.preload),
        register_count=alloc.register_count,
        outputs=out_map,
        golden=golden,
        uid_reg=dict(alloc.reg_of),
    )
