"""Constraint-programming branch-and-bound scheduler.

The stand-in for the commercial CP Optimizer the paper used: the
scheduling instance is solved to *proven optimality* by iterative
deepening on the makespan with constraint propagation and backtracking
search.  Practical for kernel-sized blocks (tens of ops — the Table I
workload); the full program is handled by seeding with the list
scheduler and letting the CP pass tighten kernels.

Formulation (for a trial makespan T):

* variables: issue cycle s_i of every task, domain [est_i, lst_i];
* precedence: s_j >= s_i + latency_i for each dependency i -> j
  (forwarding allows equality with the availability cycle);
* disjunctive machines: tasks on one unit get distinct cycles
  (initiation interval 1, pipelined);
* ports: <= 4 register reads (non-forwarded operands), <= 2 writebacks
  per cycle.

Propagation tightens [est, lst] windows through the precedence graph
until fixpoint; search branches on the tightest-window task first,
trying cycles in increasing order.  Infeasibility at T proves T+... is
required; the first feasible T equals the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..trace.ops import Unit
from .jobshop import JobShopProblem
from .list_scheduler import list_schedule
from .schedule import Schedule


class SearchBudgetExceeded(RuntimeError):
    """The branch-and-bound node budget ran out before a proof."""


@dataclass
class CPResult:
    schedule: Schedule
    optimal: bool
    nodes_explored: int
    makespan_lower_bound: int


def _propagate(
    problem: JobShopProblem,
    est: List[int],
    lst: List[int],
    succs: List[List[int]],
) -> bool:
    """Tighten est/lst windows through precedences; False if infeasible.

    Combines bound propagation along the dependency graph with a
    unit-capacity (pigeonhole / edge-finding-lite) check: any window
    [a, b] that must contain more same-unit issue slots than it has
    cycles is infeasible.
    """
    lat = problem.machine.latency
    bypass = 0 if problem.machine.forwarding else 1
    changed = True
    while changed:
        changed = False
        for t in problem.tasks:
            lo = est[t.index]
            for d in t.deps:
                need = est[d] + lat(problem.tasks[d].unit) + bypass
                if need > lo:
                    lo = need
            if lo > est[t.index]:
                est[t.index] = lo
                changed = True
            if est[t.index] > lst[t.index]:
                return False
        for t in reversed(problem.tasks):
            hi = lst[t.index]
            for s in succs[t.index]:
                need = lst[s] - lat(t.unit) - bypass
                if need < hi:
                    hi = need
            if hi < lst[t.index]:
                lst[t.index] = hi
                changed = True
            if est[t.index] > lst[t.index]:
                return False
    return _unit_capacity_ok(problem, est, lst)


def _unit_capacity_ok(
    problem: JobShopProblem, est: List[int], lst: List[int]
) -> bool:
    """Pigeonhole check per unit over all (est_i, lst_j) windows."""
    for unit in (Unit.MULTIPLIER, Unit.ADDSUB):
        windows = [
            (est[t.index], lst[t.index])
            for t in problem.tasks
            if t.unit is unit
        ]
        if not windows:
            continue
        starts = sorted({w[0] for w in windows})
        ends = sorted({w[1] for w in windows})
        for a in starts:
            # Tasks fully inside [a, b], swept in end order.
            by_end = {}
            for w0, w1 in windows:
                if w0 >= a:
                    by_end[w1] = by_end.get(w1, 0) + 1
            running = 0
            for b in ends:
                running += by_end.get(b, 0)
                if running > b - a + 1:
                    return False
    return True


def _feasible_at(
    problem: JobShopProblem,
    idx: int,
    cycle: int,
    start: List[int],
    unit_busy: Dict[Tuple[Unit, int], int],
    reads_used: Dict[int, int],
    writes_used: Dict[int, int],
) -> Optional[Tuple[int, int]]:
    """Check unit/port feasibility of issuing task idx at cycle.

    Returns (n_reads, writeback_cycle) if feasible, else None.
    """
    mach = problem.machine
    lat = mach.latency
    t = problem.tasks[idx]
    if unit_busy.get((t.unit, cycle), 0):
        return None
    for d in t.deps:
        if start[d] < 0:
            # Unscheduled dependency: cannot place yet (search order
            # guarantees deps first, so this should not happen).
            return None
        avail = start[d] + lat(problem.tasks[d].unit)
        min_issue = avail if mach.forwarding else avail + 1
        if cycle < min_issue:
            return None
    n_reads = t.external_reads
    for r in t.reads:
        if start[r] < 0:
            return None
        avail = start[r] + lat(problem.tasks[r].unit)
        if not (mach.forwarding and cycle == avail):
            n_reads += 1
    if reads_used.get(cycle, 0) + n_reads > mach.read_ports:
        return None
    wb = cycle + lat(t.unit)
    if writes_used.get(wb, 0) + 1 > mach.write_ports:
        return None
    return n_reads, wb


def _search(
    problem: JobShopProblem,
    est: List[int],
    lst: List[int],
    succs: List[List[int]],
    node_budget: int,
) -> Optional[List[int]]:
    """Backtracking search over issue cycles; returns starts or None."""
    n = problem.size
    lat = problem.machine.latency
    start = [-1] * n
    unit_busy: Dict[Tuple[Unit, int], int] = {}
    reads_used: Dict[int, int] = {}
    writes_used: Dict[int, int] = {}
    nodes = [0]

    order = sorted(range(n), key=lambda i: (est[i], lst[i] - est[i], i))
    # Re-sort so dependencies always precede their consumers: trace
    # order is topological, so a stable sort by (est, slack) needs a
    # dependency fix-up pass.
    placed_rank = {idx: r for r, idx in enumerate(order)}
    for t in problem.tasks:
        for d in t.deps:
            if placed_rank[d] > placed_rank[t.index]:
                # Fall back to plain topological order with slack tiebreak.
                order = sorted(range(n), key=lambda i: i)
                break
        else:
            continue
        break

    def rec(pos: int) -> bool:
        if pos == n:
            return True
        nodes[0] += 1
        if nodes[0] > node_budget:
            raise SearchBudgetExceeded()
        idx = order[pos]
        t = problem.tasks[idx]
        bypass = 0 if problem.machine.forwarding else 1
        lo = est[idx]
        for d in t.deps:
            lo = max(lo, start[d] + lat(problem.tasks[d].unit) + bypass)
        for cycle in range(lo, lst[idx] + 1):
            feas = _feasible_at(
                problem, idx, cycle, start, unit_busy, reads_used, writes_used
            )
            if feas is None:
                continue
            n_reads, wb = feas
            start[idx] = cycle
            unit_busy[(t.unit, cycle)] = unit_busy.get((t.unit, cycle), 0) + 1
            reads_used[cycle] = reads_used.get(cycle, 0) + n_reads
            writes_used[wb] = writes_used.get(wb, 0) + 1
            if rec(pos + 1):
                return True
            start[idx] = -1
            unit_busy[(t.unit, cycle)] -= 1
            reads_used[cycle] -= n_reads
            writes_used[wb] -= 1
        return False

    if rec(0):
        return start
    return None


def cp_schedule(
    problem: JobShopProblem,
    node_budget: int = 200_000,
    makespan_limit: Optional[int] = None,
) -> CPResult:
    """Solve to proven optimality by iterative deepening on the makespan.

    Starts from the instance lower bound; the first feasible trial
    makespan is optimal.  The list-scheduler solution caps the search
    (if the list schedule already meets the lower bound, no search is
    needed).  Raises :class:`SearchBudgetExceeded` only if even the
    fallback cannot be proven within budget — the greedy schedule is
    then returned with ``optimal=False``.
    """
    lb = problem.lower_bound()
    greedy = list_schedule(problem, method="cp-seed")
    ub = greedy.makespan
    if makespan_limit is not None:
        ub = min(ub, makespan_limit)
    if ub <= lb:
        return CPResult(
            schedule=Schedule(problem=problem, start=greedy.start, method="cp(optimal)"),
            optimal=True,
            nodes_explored=0,
            makespan_lower_bound=lb,
        )
    lat = problem.machine.latency
    succs = problem.successors()
    nodes_total = 0
    for trial in range(lb, ub):
        est = [0] * problem.size
        lst = [trial - lat(t.unit) for t in problem.tasks]
        if not _propagate(problem, est, lst, succs):
            continue
        try:
            starts = _search(problem, est, lst, succs, node_budget)
        except SearchBudgetExceeded:
            nodes_total += node_budget
            return CPResult(
                schedule=greedy,
                optimal=False,
                nodes_explored=nodes_total,
                makespan_lower_bound=lb,
            )
        nodes_total += 1
        if starts is not None:
            return CPResult(
                schedule=Schedule(
                    problem=problem, start=starts, method="cp(optimal)"
                ),
                optimal=True,
                nodes_explored=nodes_total,
                makespan_lower_bound=lb,
            )
    # No trial below the greedy makespan is feasible: greedy is optimal.
    return CPResult(
        schedule=Schedule(
            problem=problem, start=greedy.start, method="cp(optimal)"
        ),
        optimal=True,
        nodes_explored=nodes_total,
        makespan_lower_bound=lb,
    )
