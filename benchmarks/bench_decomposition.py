"""E8 — the 4-dimensional decomposition (paper Section II-B-3 / Alg. 1).

Paper claims:

* a 256-bit scalar decomposes into four 64-bit scalars, so "the number
  of iterations in the double-and-add algorithm can be reduced to 1/4";
* FourQ is ~5x faster than NIST P-256 and ~2x faster than Curve25519
  (Section I, citing [7]).

This bench measures the decomposition widths, the iteration counts,
and the cross-curve field-operation budgets that produce those factors.
"""

import random

from repro.analysis import (
    curve25519_budget,
    fourq_budget,
    p256_budget,
    render_budgets,
)
from repro.curve import default_decomposer, recode_glv_sac


def test_decomposition_widths(benchmark):
    dec = default_decomposer()
    rng = random.Random(11)
    scalars = [rng.randrange(2**256) for _ in range(64)]

    def run():
        return [dec.decompose(k) for k in scalars]

    results = benchmark(run)
    worst = max(d.max_bits for d in results)
    print("\nE8: 4-D decomposition widths over 64 random 256-bit scalars")
    print(f"  {'':28} {'paper':>8} {'measured':>9}")
    print(f"  {'max sub-scalar width':28} {'64 bit':>8} {worst:>6} bit")
    assert worst <= 64


def test_iteration_reduction(benchmark):
    dec = default_decomposer()
    rng = random.Random(12)

    def run():
        k = rng.randrange(2**256)
        d = dec.decompose(k)
        return recode_glv_sac(d.scalars)

    rec = benchmark(run)
    print(f"\n  main-loop iterations: {rec.iterations} "
          f"(paper Algorithm 1: 64; plain double-and-add: 256)")
    print(f"  reduction factor: {256 / rec.iterations:.1f}x (paper: 4x)")
    assert rec.iterations == 64


def test_cross_curve_budgets(benchmark):
    budgets = benchmark.pedantic(
        lambda: [fourq_budget(), p256_budget(), curve25519_budget()],
        rounds=1,
        iterations=1,
    )
    print("\nE8: field-operation budgets per scalar multiplication")
    print(render_budgets(budgets))
    fourq, p256, c25519 = budgets
    r_p256 = p256.mult_ops_normalized / fourq.mult_ops_normalized
    r_25519 = c25519.mult_ops_normalized / fourq.mult_ops_normalized
    print(f"\n  normalized mult ratio P-256/FourQ:      {r_p256:.2f}x "
          f"(paper: ~5x vs optimized P-256 software; double-and-add here)")
    print(f"  normalized mult ratio Curve25519/FourQ: {r_25519:.2f}x "
          f"(paper: ~2x)")
    # Shape: FourQ wins clearly against both, Curve25519 sits between.
    assert r_p256 > 2.5
    assert 1.3 <= r_25519 <= 2.5
