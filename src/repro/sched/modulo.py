"""Software pipelining: iterative modulo scheduling of the loop kernel.

The paper's main loop runs 64 identical iterations; scheduling each
iteration in isolation leaves the multiplier idle while the tail of one
iteration waits on the adder chain.  Modulo scheduling overlaps
consecutive iterations at a fixed initiation interval II, bounded below
by

* **ResMII** — the busiest unit's load (15 multiplier slots), and
* **RecMII** — the loop-carried recurrence: the longest cycle through
  the dependence graph divided by its iteration distance.

This module implements Rau-style iterative modulo scheduling (height
priority, modulo reservation table, bounded eviction backtracking),
verifies the result by *unrolling*: the repeating pattern
``start(op, j) = sigma(op) + j * II`` is materialized for several
iterations and checked with the standard schedule validator, so every
port/forwarding/precedence rule holds exactly, not just modulo-ly.

The steady-state throughput result feeds the scheduling ablation: it is
the limit the paper's whole-program CP scheduling approaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.ops import Unit
from .jobshop import JobShopProblem, Task
from .list_scheduler import _critical_path_priority
from .schedule import Schedule, ScheduleError


@dataclass(frozen=True)
class CarriedDependency:
    """A loop-carried edge: ``src`` of iteration j feeds ``dst`` of j+1."""

    src: int
    dst: int
    distance: int = 1


@dataclass
class LoopKernel:
    """One loop iteration plus its cross-iteration dependencies."""

    problem: JobShopProblem
    carried: List[CarriedDependency]

    def res_mii(self) -> int:
        """Resource-constrained minimum initiation interval."""
        return max(
            self.problem.unit_load(Unit.MULTIPLIER),
            self.problem.unit_load(Unit.ADDSUB),
            1,
        )

    def rec_mii(self) -> int:
        """Recurrence-constrained MII via iterative shortest-cycle check.

        For a candidate II, an edge (i -> j, distance d) imposes
        sigma_j - sigma_i >= lat_i - II * d.  The candidate is feasible
        w.r.t. recurrences iff the constraint graph has no positive
        cycle; we find the smallest such II by testing upward from 1
        with Bellman-Ford (kernels are tiny, this is instant).
        """
        lat = self.problem.machine.latency
        n = self.problem.size
        edges: List[Tuple[int, int, int, int]] = []
        for t in self.problem.tasks:
            for d in t.deps:
                edges.append((d, t.index, lat(self.problem.tasks[d].unit), 0))
        for c in self.carried:
            edges.append(
                (c.src, c.dst, lat(self.problem.tasks[c.src].unit), c.distance)
            )

        def feasible(ii: int) -> bool:
            dist = [0] * n
            for _ in range(n):
                changed = False
                for u, v, w, dd in edges:
                    need = dist[u] + w - ii * dd
                    if need > dist[v]:
                        dist[v] = need
                        changed = True
                if not changed:
                    return True
            return not changed

        ii = 1
        while not feasible(ii):
            ii += 1
            if ii > 4 * self.problem.lower_bound() + 8:  # pragma: no cover
                raise RuntimeError("recurrence MII search diverged")
        return ii

    def mii(self) -> int:
        return max(self.res_mii(), self.rec_mii())


@dataclass
class ModuloSchedule:
    """sigma assignments at initiation interval ii."""

    kernel: LoopKernel
    sigma: List[int]
    ii: int

    @property
    def steady_state_cycles_per_iteration(self) -> int:
        return self.ii

    def makespan_for(self, iterations: int) -> int:
        """Total cycles for ``iterations`` overlapped iterations."""
        lat = self.kernel.problem.machine.latency
        last = max(
            s + lat(t.unit)
            for s, t in zip(self.sigma, self.kernel.problem.tasks)
        )
        return (iterations - 1) * self.ii + last


def _ims_try(
    kernel: LoopKernel,
    ii: int,
    budget: int,
    jitter: Optional[Sequence[int]] = None,
) -> Optional[List[int]]:
    """One attempt of iterative modulo scheduling at interval ii.

    ``jitter`` perturbs the priority order (used by the randomized
    restarts in :func:`modulo_schedule` to escape greedy dead ends).
    """
    prob = kernel.problem
    lat = prob.machine.latency
    n = prob.size
    prio = _critical_path_priority(prob)
    if jitter is not None:
        prio = [p * 8 + j for p, j in zip(prio, jitter)]

    # Incoming edges with (src, weight, distance) per node.
    incoming: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
    outgoing: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
    for t in prob.tasks:
        for d in t.deps:
            w = lat(prob.tasks[d].unit)
            incoming[t.index].append((d, w, 0))
            outgoing[d].append((t.index, w, 0))
    for c in kernel.carried:
        w = lat(prob.tasks[c.src].unit)
        incoming[c.dst].append((c.src, w, c.distance))
        outgoing[c.src].append((c.dst, w, c.distance))

    sigma: List[Optional[int]] = [None] * n
    # Modulo reservation: (unit, residue) -> task occupying it.
    reservation: Dict[Tuple[Unit, int], int] = {}
    # Port reservation per residue (conservative: every operand reads).
    reads_res: Dict[int, int] = {}
    writes_res: Dict[int, int] = {}

    def task_reads(idx: int) -> int:
        t = prob.tasks[idx]
        return len(t.reads) + t.external_reads

    def place(idx: int, cycle: int) -> None:
        t = prob.tasks[idx]
        sigma[idx] = cycle
        reservation[(t.unit, cycle % ii)] = idx
        reads_res[cycle % ii] = reads_res.get(cycle % ii, 0) + task_reads(idx)
        wb = (cycle + lat(t.unit)) % ii
        writes_res[wb] = writes_res.get(wb, 0) + 1

    def unplace(idx: int) -> None:
        t = prob.tasks[idx]
        cycle = sigma[idx]
        assert cycle is not None
        del reservation[(t.unit, cycle % ii)]
        reads_res[cycle % ii] -= task_reads(idx)
        writes_res[(cycle + lat(t.unit)) % ii] -= 1
        sigma[idx] = None

    def fits(idx: int, cycle: int) -> bool:
        t = prob.tasks[idx]
        if (t.unit, cycle % ii) in reservation:
            return False
        if reads_res.get(cycle % ii, 0) + task_reads(idx) > prob.machine.read_ports:
            return False
        wb = (cycle + lat(t.unit)) % ii
        if writes_res.get(wb, 0) + 1 > prob.machine.write_ports:
            return False
        return True

    # Rau's IMS main loop: schedule by priority; on conflict evict.
    # sigma_cap keeps the prologue compact: an attempt that ratchets any
    # op beyond the cap is abandoned (the caller then grows II).
    sigma_cap = 3 * ii + prob.critical_path_bound()
    order = sorted(range(n), key=lambda i: (-prio[i], i))
    worklist = list(order)
    attempts = 0
    last_tried: Dict[int, int] = {}
    while worklist:
        attempts += 1
        if attempts > budget:
            return None
        idx = worklist.pop(0)
        lo = 0
        for src, w, dist in incoming[idx]:
            if sigma[src] is not None:
                lo = max(lo, sigma[src] + w - ii * dist)
        lo = max(lo, last_tried.get(idx, -1) + 1)
        if lo > sigma_cap:
            return None
        placed = False
        for cycle in range(lo, lo + ii):
            if fits(idx, cycle):
                place(idx, cycle)
                last_tried[idx] = cycle
                placed = True
                break
        if not placed:
            # Evict the occupant of the first candidate slot and force
            # this task there (Rau's displacement step).
            cycle = lo
            t = prob.tasks[idx]
            victim = reservation.get((t.unit, cycle % ii))
            if victim is not None:
                unplace(victim)
                worklist.append(victim)
            if not fits(idx, cycle):
                # Ports still blocked: push to the next cycle attempt.
                last_tried[idx] = cycle
                worklist.append(idx)
                continue
            place(idx, cycle)
            last_tried[idx] = cycle
        # Successors already scheduled too early must be rescheduled.
        for dst, w, dist in outgoing[idx]:
            if sigma[dst] is not None and sigma[dst] < sigma[idx] + w - ii * dist:
                unplace(dst)
                worklist.append(dst)
    # Normalize so min sigma is 0.
    base = min(s for s in sigma)  # type: ignore[arg-type]
    return [s - base for s in sigma]  # type: ignore[misc]


def modulo_schedule(
    kernel: LoopKernel,
    max_ii: Optional[int] = None,
    budget: int = 50_000,
    restarts: int = 12,
    seed: int = 0x51,
) -> ModuloSchedule:
    """Find a verified modulo schedule at the smallest feasible II.

    Tries II from MII upward with randomized-priority restarts per II;
    every candidate is verified by unrolling
    (see :func:`validate_by_unrolling`) before being accepted.
    """
    import random as _random

    rng = _random.Random(seed)
    mii = kernel.mii()
    top = max_ii if max_ii is not None else 3 * kernel.problem.lower_bound() + 8
    n = kernel.problem.size
    for ii in range(mii, top + 1):
        for attempt in range(restarts):
            jitter = None if attempt == 0 else [rng.randrange(8) for _ in range(n)]
            sigma = _ims_try(kernel, ii, budget, jitter)
            if sigma is None:
                continue
            ms = ModuloSchedule(kernel=kernel, sigma=sigma, ii=ii)
            try:
                validate_by_unrolling(ms, iterations=4)
            except ScheduleError:
                continue
            return ms
    raise RuntimeError("no feasible initiation interval found")


def validate_by_unrolling(ms: ModuloSchedule, iterations: int = 4) -> None:
    """Materialize the repeating pattern and run the full validator.

    Builds an unrolled problem (iteration copies chained by the carried
    dependencies) with ``start(op, j) = sigma(op) + j * II`` and
    validates precedences, unit occupancy, and ports exactly.
    """
    kernel = ms.kernel
    prob = kernel.problem
    n = prob.size
    tasks: List[Task] = []
    for j in range(iterations):
        for t in prob.tasks:
            deps = tuple(d + j * n for d in t.deps)
            reads = tuple(r + j * n for r in t.reads)
            external = t.external_reads
            if j > 0:
                extra = tuple(
                    c.src + (j - c.distance) * n
                    for c in kernel.carried
                    if c.dst == t.index and j - c.distance >= 0
                )
                deps = tuple(sorted(set(deps) | set(extra)))
                reads = reads + extra
                # These operands were external (preloaded Q) in the
                # kernel view; in the unrolled program they are produced
                # by the previous iteration, so stop double-counting.
                external = max(0, external - len(extra))
            tasks.append(
                Task(
                    index=t.index + j * n,
                    uid=t.uid + j * 10_000,
                    unit=t.unit,
                    deps=deps,
                    kind=t.kind,
                    reads=reads,
                    external_reads=external,
                    name=t.name,
                )
            )
    unrolled = JobShopProblem(tasks=tasks, machine=prob.machine)
    start = [
        ms.sigma[i % n] + (i // n) * ms.ii for i in range(n * iterations)
    ]
    Schedule(problem=unrolled, start=start, method=f"modulo(II={ms.ii})").validate()


def kernel_from_traces(single_iter_prog, chained_prog=None) -> LoopKernel:
    """Build a LoopKernel from a single-iteration trace.

    The carried dependencies connect each program output (the new Q)
    back to the task consuming the corresponding input (the old Q) —
    matched positionally: outputs are (Qx', Qy', Qz', Qta', Qtb') and
    inputs (Qx, Qy, Qz, Qta, Qtb).
    """
    from .jobshop import problem_from_trace, resolve_select_chosen

    tracer = single_iter_prog.tracer
    problem = problem_from_trace(tracer.trace)
    by_uid = {op.uid: op for op in tracer.trace}

    # Positional pairing input[i] <-> output[i].
    carried: List[CarriedDependency] = []
    for in_uid, out_uid in zip(tracer.inputs[:5], tracer.outputs[:5]):
        out_concrete = resolve_select_chosen(by_uid, out_uid)
        src = problem.uid_to_index.get(out_concrete)
        if src is None:
            continue
        # Every task consuming this input gets a carried edge.
        for t in problem.tasks:
            op = by_uid[t.uid]
            alts = set()
            for s in op.srcs:
                from .jobshop import resolve_select_all

                alts.update(resolve_select_all(by_uid, s))
            if in_uid in alts:
                carried.append(CarriedDependency(src=src, dst=t.index))
    return LoopKernel(problem=problem, carried=carried)
