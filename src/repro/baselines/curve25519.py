"""Curve25519 / X25519 Montgomery-ladder scalar multiplication.

The second comparison point in the paper (Table II row [22]; the
paper's introduction cites Curve25519 as the previous speed champion
that FourQ is about 2x faster than).  Implements RFC 7748 X25519 with
the standard x-only Montgomery ladder and an operation counter.
"""

from __future__ import annotations


from .weierstrass import OpCounter

#: Field prime 2^255 - 19.
P25519 = 2**255 - 19
#: Montgomery A coefficient: y^2 = x^3 + 486662 x^2 + x.
A24 = (486662 - 2) // 4
#: Subgroup order.
L25519 = 2**252 + 27742317777372353535851937790883648493
#: Canonical base point u-coordinate.
U_BASE = 9


def _clamp(k: bytes) -> int:
    """RFC 7748 scalar clamping."""
    if len(k) != 32:
        raise ValueError("X25519 scalar must be 32 bytes")
    v = bytearray(k)
    v[0] &= 248
    v[31] &= 127
    v[31] |= 64
    return int.from_bytes(bytes(v), "little")


def x25519_ladder(k: int, u: int, counter: OpCounter = None) -> int:
    """The Montgomery ladder: 255 steps of 5M + 4S + 8A each.

    Args:
        k: the (already clamped, if applicable) scalar.
        u: input u-coordinate.
        counter: optional op counter for the benchmarks.

    Returns:
        u-coordinate of [k]P.
    """
    p = P25519
    x1 = u % p
    x2, z2 = 1, 0
    x3, z3 = x1, 1
    swap = 0
    ctr = counter

    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        if swap ^ k_t:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t
        a = (x2 + z2) % p
        aa = a * a % p
        b = (x2 - z2) % p
        bb = b * b % p
        e = (aa - bb) % p
        c = (x3 + z3) % p
        d = (x3 - z3) % p
        da = d * a % p
        cb = c * b % p
        x3 = (da + cb) % p
        x3 = x3 * x3 % p
        z3 = (da - cb) % p
        z3 = z3 * z3 % p
        z3 = z3 * x1 % p
        x2 = aa * bb % p
        z2 = e * (aa + A24 * e % p) % p
        if ctr is not None:
            ctr.muls += 5
            ctr.sqrs += 4
            ctr.adds += 8
    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    if ctr is not None:
        ctr.invs += 1
    return x2 * pow(z2, p - 2, p) % p


def x25519(scalar_bytes: bytes, u_bytes: bytes = None, counter: OpCounter = None) -> bytes:
    """RFC 7748 X25519 function on byte strings."""
    k = _clamp(scalar_bytes)
    if u_bytes is None:
        u = U_BASE
    else:
        u = int.from_bytes(u_bytes, "little") & ((1 << 255) - 1)
    out = x25519_ladder(k, u, counter)
    return out.to_bytes(32, "little")


#: RFC 7748 test vector (scalar, input u, expected output u).
RFC7748_VECTOR = (
    bytes.fromhex(
        "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"
    ),
    bytes.fromhex(
        "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"
    ),
    bytes.fromhex(
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
    ),
)
