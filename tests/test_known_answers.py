"""Known-answer tests against the frozen vectors in tests/vectors/.

The vectors were generated once from the pure math layer and pinned;
these tests re-derive every answer through *both* execution paths —
the math layer (extended-coordinate Edwards with endomorphisms) and
the cycle-accurate simulated datapath via the batch engine — and
require bit-for-bit agreement with the frozen values.  A change that
silently alters any scalar-multiplication, DH, or signature result
fails here even if the implementation stays self-consistent.
"""

import json
import os

import pytest

from repro.curve.params import SUBGROUP_ORDER_N
from repro.curve.point import AffinePoint
from repro.curve.scalarmult import scalar_mul_fourq
from repro.dsa import fourq_dh, fourq_schnorr

VECTORS = os.path.join(os.path.dirname(__file__), "vectors", "fourq_kat.json")


def _fp2(pair):
    return (int(pair[0], 16), int(pair[1], 16))


def _point(obj):
    if obj == "generator":
        return AffinePoint.generator()
    return AffinePoint(_fp2(obj["x"]), _fp2(obj["y"]))


@pytest.fixture(scope="module")
def kat():
    with open(VECTORS) as f:
        return json.load(f)


@pytest.fixture(scope="module")
def engine():
    from repro.serve import BatchEngine

    eng = BatchEngine()
    eng.warm()
    return eng


class TestScalarMultKAT:
    def test_math_layer(self, kat):
        for vec in kat["scalarmult"]:
            k = int(vec["k"], 16)
            got = scalar_mul_fourq(k, _point(vec["point"]))
            want = _point(vec["result"])
            assert (got.x, got.y) == (want.x, want.y), f"k={vec['k']}"

    def test_simulated_datapath(self, kat, engine):
        # One batch through the engine: every result must equal the
        # frozen vector bit for bit (cache-hit fast path included).
        vecs = kat["scalarmult"]
        results = engine.batch_scalarmult(
            [int(v["k"], 16) for v in vecs],
            points=[_point(v["point"]) for v in vecs],
        )
        for vec, got in zip(vecs, results):
            want = _point(vec["result"])
            assert (got.x, got.y) == (want.x, want.y), f"k={vec['k']}"

    def test_order_annihilates(self, kat):
        # Sanity on the vector set itself: [N]G = identity, so the
        # k = N-1 vector must be -G.
        neg_g = -AffinePoint.generator()
        match = [
            v for v in kat["scalarmult"]
            if int(v["k"], 16) == SUBGROUP_ORDER_N - 1
        ]
        assert match, "vector file must pin k = N-1"
        got = _point(match[0]["result"])
        assert (got.x, got.y) == (neg_g.x, neg_g.y)


class TestDHKAT:
    def test_shared_secrets(self, kat):
        for vec in kat["dh"]:
            a = fourq_dh.DHKeyPair(
                private=int(vec["private_a"], 16),
                public_bytes=bytes.fromhex(vec["public_a"]),
            )
            b = fourq_dh.DHKeyPair(
                private=int(vec["private_b"], 16),
                public_bytes=bytes.fromhex(vec["public_b"]),
            )
            want = bytes.fromhex(vec["shared"])
            assert fourq_dh.shared_secret(a, b.public_bytes) == want
            assert fourq_dh.shared_secret(b, a.public_bytes) == want

    def test_batch_engine_agrees(self, kat, engine):
        vecs = kat["dh"]
        for vec in vecs:
            a_priv = int(vec["private_a"], 16)
            res = engine.batch_dh(a_priv, [bytes.fromhex(vec["public_b"])])
            assert res[0] == bytes.fromhex(vec["shared"])


class TestSchnorrKAT:
    def test_signatures_reproduce(self, kat):
        for vec in kat["schnorr"]:
            key = fourq_schnorr.SchnorrKeyPair(
                private=int(vec["private"], 16), public=_point(vec["public"])
            )
            msg = bytes.fromhex(vec["message"])
            nonce = int(vec["nonce"], 16) if vec["nonce"] else None
            sig = fourq_schnorr.sign(key, msg, nonce=nonce)
            assert sig.commit_x == _fp2(vec["commit_x"])
            assert sig.commit_y == _fp2(vec["commit_y"])
            assert sig.s == int(vec["s"], 16)

    def test_signatures_verify(self, kat):
        for vec in kat["schnorr"]:
            sig = fourq_schnorr.SchnorrSignature(
                commit_x=_fp2(vec["commit_x"]),
                commit_y=_fp2(vec["commit_y"]),
                s=int(vec["s"], 16),
            )
            pub = _point(vec["public"])
            msg = bytes.fromhex(vec["message"])
            assert fourq_schnorr.verify(pub, msg, sig)
            # Any single corruption must fail.
            assert not fourq_schnorr.verify(pub, msg + b"x", sig)

    def test_batch_verify_agrees(self, kat, engine):
        items = []
        for vec in kat["schnorr"]:
            sig = fourq_schnorr.SchnorrSignature(
                commit_x=_fp2(vec["commit_x"]),
                commit_y=_fp2(vec["commit_y"]),
                s=int(vec["s"], 16),
            )
            items.append((_point(vec["public"]), bytes.fromhex(vec["message"]), sig))
        assert list(engine.batch_verify(items)) == [True] * len(items)
