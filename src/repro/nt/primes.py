"""Primality testing and modular square roots for arbitrary moduli.

Used to self-verify the FourQ subgroup order N at test time and to find
the endomorphism eigenvalues (square roots of small integers modulo N).
"""

from __future__ import annotations

import random
from typing import Optional

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
)


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin probabilistic primality test.

    With 40 random rounds the error probability is below 2^-80; for the
    fixed constants this library verifies, deterministic witness sets
    would also do, but random rounds keep the routine general.
    """
    if n < 2:
        return False
    for sp in _SMALL_PRIMES:
        if n % sp == 0:
            return n == sp
    rng = rng or random.Random(0xF0)
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def sqrt_mod_prime(a: int, p: int) -> Optional[int]:
    """Return a square root of ``a`` modulo an odd prime ``p``, or None.

    Implements Tonelli-Shanks.  For ``p === 3 (mod 4)`` the direct
    exponentiation shortcut is used.
    """
    a %= p
    if a == 0:
        return 0
    if pow(a, (p - 1) // 2, p) != 1:
        return None
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p === 1 (mod 4)
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        i, tt = 0, t
        while tt != 1:
            tt = tt * tt % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t = t * c % p
        r = r * b % p
    return r


def inverse_mod(a: int, n: int) -> int:
    """Modular inverse via the extended Euclidean algorithm.

    Raises:
        ZeroDivisionError: if ``gcd(a, n) != 1``.
    """
    a %= n
    if a == 0:
        raise ZeroDivisionError("inverse of zero")
    old_r, r = a, n
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    if old_r != 1:
        raise ZeroDivisionError(f"gcd({a}, {n}) = {old_r} != 1")
    return old_s % n
