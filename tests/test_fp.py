"""Unit and property tests for F_p arithmetic (p = 2^127 - 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.fp import (
    P127,
    Fp,
    fp_add,
    fp_inv,
    fp_is_square,
    fp_mul,
    fp_neg,
    fp_normalize,
    fp_reduce,
    fp_sqr,
    fp_sqrt,
    fp_sub,
)

elements = st.integers(min_value=0, max_value=P127 - 1)
wide = st.integers(min_value=0, max_value=(P127 - 1) ** 2 * 4)


class TestReduce:
    def test_zero(self):
        assert fp_reduce(0) == 0

    def test_p_reduces_to_zero(self):
        assert fp_reduce(P127) == 0

    def test_two_p(self):
        assert fp_reduce(2 * P127) == 0

    def test_power_of_two_fold(self):
        # 2^127 === 1 (mod p)
        assert fp_reduce(1 << 127) == 1

    def test_max_product(self):
        z = (P127 - 1) * (P127 - 1)
        assert fp_reduce(z) == z % P127

    @given(wide)
    def test_reduce_matches_mod(self, z):
        assert fp_reduce(z) == z % P127

    @given(st.integers(min_value=-(10**60), max_value=10**60))
    def test_normalize_matches_mod(self, z):
        assert fp_normalize(z) == z % P127


class TestFieldAxioms:
    @given(elements, elements)
    def test_add_commutes(self, a, b):
        assert fp_add(a, b) == fp_add(b, a)

    @given(elements, elements, elements)
    def test_add_associates(self, a, b, c):
        assert fp_add(fp_add(a, b), c) == fp_add(a, fp_add(b, c))

    @given(elements, elements)
    def test_mul_commutes(self, a, b):
        assert fp_mul(a, b) == fp_mul(b, a)

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert fp_mul(a, fp_add(b, c)) == fp_add(fp_mul(a, b), fp_mul(a, c))

    @given(elements)
    def test_add_neg_is_zero(self, a):
        assert fp_add(a, fp_neg(a)) == 0

    @given(elements)
    def test_sub_self_zero(self, a):
        assert fp_sub(a, a) == 0

    @given(elements)
    def test_sqr_matches_mul(self, a):
        assert fp_sqr(a) == fp_mul(a, a)

    @given(elements.filter(lambda a: a != 0))
    def test_inverse(self, a):
        assert fp_mul(a, fp_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            fp_inv(0)


class TestSqrt:
    @given(elements)
    def test_sqrt_of_square(self, a):
        s = fp_sqr(a)
        r = fp_sqrt(s)
        assert r is not None
        assert fp_sqr(r) == s

    @given(elements)
    def test_is_square_consistent(self, a):
        s = fp_sqr(a)
        assert fp_is_square(s)

    def test_sqrt_zero(self):
        assert fp_sqrt(0) == 0

    def test_nonresidue_returns_none(self):
        # -1 is a non-residue for p === 3 (mod 4)
        assert fp_sqrt(P127 - 1) is None
        assert not fp_is_square(P127 - 1)


class TestFpClass:
    def test_constructor_normalizes(self):
        assert Fp(P127 + 5).value == 5
        assert Fp(-1).value == P127 - 1

    def test_mixed_int_arithmetic(self):
        a = Fp(10)
        assert a + 5 == Fp(15)
        assert 5 + a == Fp(15)
        assert a - 3 == Fp(7)
        assert 3 - a == Fp(-7)
        assert a * 2 == Fp(20)
        assert -a == Fp(-10)

    def test_division(self):
        a = Fp(10)
        assert (a / 2) * 2 == a
        assert (2 / a) * a == Fp(2)

    def test_pow_negative_exponent(self):
        a = Fp(7)
        assert a ** -1 * a == Fp(1)

    def test_eq_hash(self):
        assert Fp(3) == 3
        assert Fp(3) == Fp(3)
        assert hash(Fp(3)) == hash(Fp(P127 + 3))

    def test_bool(self):
        assert not Fp(0)
        assert Fp(1)

    def test_repr_roundtrip_hex(self):
        assert "0x2a" in repr(Fp(42))

    def test_sqrt_method(self):
        nine = Fp(9)
        r = nine.sqrt()
        assert r is not None and r * r == nine
        assert nine.is_square()
