"""Integration tests: the complete design flow, trace to verified cycles.

These are the repository's strongest end-to-end guarantees: the
scheduled, register-allocated microprogram executed on the
cycle-accurate datapath must reproduce — bit for bit — what the
mathematical layer computes, including the full [k]P result.
"""

import pytest

from repro.curve.point import AffinePoint
from repro.flow import run_flow
from repro.rtl import DatapathSimulator, SimulationError
from repro.sched import MachineSpec
from repro.trace import trace_loop_iteration, trace_scalar_mult


class TestKernelFlow:
    @pytest.fixture(scope="class")
    def flow(self):
        return run_flow(trace_loop_iteration())

    def test_kernel_schedule_is_paper_25_cycles(self, flow):
        """Optimal kernel schedule: 24 issue cycles + writeback = 25
        ROM words, matching the cycle count of the paper's Table I."""
        assert flow.schedule.makespan == 24
        assert flow.microprogram.cycles == 25

    def test_kernel_simulation_matches_expected_point(self, flow):
        from repro.field.fp2 import fp2_inv, fp2_mul

        out = flow.simulation.outputs
        zinv = fp2_inv(out["Qz'"])
        x = fp2_mul(out["Qx'"], zinv)
        y = fp2_mul(out["Qy'"], zinv)
        assert AffinePoint(x, y) == flow.trace_program.expected

    def test_kernel_register_count_small(self, flow):
        assert flow.microprogram.register_count <= 16

    def test_port_limits_respected_in_simulation(self, flow):
        assert flow.simulation.max_reads_per_cycle <= 4
        assert flow.simulation.max_writes_per_cycle <= 2

    def test_fsm_geometry(self, flow):
        assert flow.fsm.states == flow.microprogram.cycles + 2
        assert flow.fsm.word_bits > 20
        assert len(flow.fsm.rom) == flow.microprogram.cycles


class TestFullProgramFlow:
    @pytest.fixture(scope="class")
    def flow(self):
        prog = trace_scalar_mult(k=0xC0FFEE << 200)
        return run_flow(prog)

    def test_rtl_computes_kP(self, flow):
        """The headline integration check: simulated chip output = [k]P."""
        out = flow.simulation.outputs
        exp = flow.trace_program.expected
        assert out["result_x"] == exp.x
        assert out["result_y"] == exp.y

    def test_cycle_count_plausible(self, flow):
        """~2000 cycles: consistent with 10.1 us at the fmax the
        technology model derives for 1.2 V."""
        assert 1500 <= flow.cycles <= 2600

    def test_schedule_close_to_lower_bound(self, flow):
        lb = flow.problem.lower_bound()
        assert flow.schedule.makespan <= 1.35 * lb

    def test_golden_checking_catches_corruption(self, flow):
        """Corrupt one golden value: the simulator must detect it."""
        prog = flow.microprogram
        victim_uid = next(iter(u for u in prog.golden if prog.golden[u] != (0, 0)))
        original = prog.golden[victim_uid]
        prog.golden[victim_uid] = (original[0] ^ 1, original[1])
        sim = DatapathSimulator()
        is_computed = any(
            wb.uid == victim_uid for w in prog.words for wb in w.writebacks
        )
        try:
            if is_computed:
                with pytest.raises(SimulationError):
                    sim.run(prog)
        finally:
            prog.golden[victim_uid] = original

    def test_different_scalars_same_cycle_count(self):
        """Constant-time property: cycle count independent of k."""
        a = run_flow(trace_scalar_mult(k=1))
        b = run_flow(trace_scalar_mult(k=2**255 - 19))
        assert a.cycles == b.cycles


class TestFlowVariants:
    def test_no_forwarding_machine(self):
        flow = run_flow(
            trace_loop_iteration(), machine=MachineSpec(forwarding=False)
        )
        assert flow.schedule.makespan >= 24  # strictly harder

    def test_explicit_list_scheduler(self):
        flow = run_flow(trace_loop_iteration(), scheduler="list")
        assert flow.simulation.cycles >= 24

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            run_flow(trace_loop_iteration(), scheduler="quantum")

    def test_report_renders(self):
        flow = run_flow(trace_loop_iteration())
        text = flow.report()
        assert "micro-ops" in text and "simulated cycles" in text
