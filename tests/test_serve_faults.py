"""Fault isolation: one poisoned request must never kill the batch.

The contract under test (docs/serving.md, "The error contract"):

* a rejected request — small-order peer key, malformed encoding,
  unprocessable signature material — costs exactly one typed
  :class:`~repro.serve.faults.Failed` slot in the result, in input
  order, while every other item returns its bit-exact value;
* ``strict=True`` restores the historical raise-on-first-error;
* serial and ``workers=2`` mode return identical outcomes;
* a chunk whose worker process dies or times out is requeued and
  recovered serially in the parent — results already computed by
  healthy workers are never discarded.
"""

import dataclasses
import random

import pytest

from repro.curve.encoding import DecodingError, encode_point
from repro.curve.params import SUBGROUP_ORDER_N
from repro.curve.point import AffinePoint
from repro.curve.scalarmult import scalar_mul_fourq
from repro.dsa import fourq_dh, fourq_schnorr
from repro.dsa.fourq_dh import SmallOrderPoint
from repro.serve import BatchEngine, Failed
from repro.serve.faults import (
    KIND_DECODING,
    KIND_SMALL_ORDER,
    KIND_TYPE,
    classify_exception,
)

#: Decodes fine, collapses to the identity at cofactor clearing.
SMALL_ORDER_ENCODING = encode_point(AffinePoint.identity())
#: Dies in the decoder (reserved bit set).
GARBAGE_ENCODING = b"\xff" * 32

N_ITEMS = 64
N_BAD = 8


@pytest.fixture(scope="module")
def engine():
    eng = BatchEngine()
    eng.warm()
    return eng


@pytest.fixture(scope="module")
def poisoned_dh():
    """64 DH requests, 8 invalid (4 small-order + 4 malformed), and the
    reference secrets for the 56 good ones."""
    rng = random.Random(0xFA_157)
    me = fourq_dh.generate_keypair(rng)
    pubs = [fourq_dh.generate_keypair(rng).public_bytes for _ in range(N_ITEMS)]
    bad_positions = sorted(rng.sample(range(N_ITEMS), N_BAD))
    expected_kinds = {}
    for j, pos in enumerate(bad_positions):
        pubs[pos] = SMALL_ORDER_ENCODING if j % 2 == 0 else GARBAGE_ENCODING
        expected_kinds[pos] = KIND_SMALL_ORDER if j % 2 == 0 else KIND_DECODING
    references = {
        i: fourq_dh.shared_secret(me, pub)
        for i, pub in enumerate(pubs)
        if i not in expected_kinds
    }
    return me, pubs, expected_kinds, references


@pytest.fixture(scope="module")
def serial_dh_result(engine, poisoned_dh):
    me, pubs, _, _ = poisoned_dh
    return engine.batch_dh(me.private, pubs)


class TestPoisonedBatchDH:
    """The acceptance scenario: 64 items, 8 poisoned, nothing lost."""

    def test_serial_isolation(self, serial_dh_result, poisoned_dh):
        _, _, expected_kinds, references = poisoned_dh
        result = serial_dh_result
        assert len(result) == N_ITEMS
        assert result.ok_count == N_ITEMS - N_BAD

        # 56 correct shared secrets, bit-identical to the reference.
        for i, secret in references.items():
            assert result[i] == secret

        # 8 typed errors, in input order, at the injected positions.
        errors = result.errors
        assert [f.index for f in errors] == sorted(expected_kinds)
        for failure in errors:
            assert isinstance(failure, Failed)
            assert failure.kind == expected_kinds[failure.index]
            assert failure.message

        # Observability matches the injected faults exactly.
        assert result.stats.errors == N_BAD
        assert result.stats.errors_by_kind == {
            KIND_SMALL_ORDER: N_BAD // 2,
            KIND_DECODING: N_BAD // 2,
        }
        assert len(result.stats.error_latencies) == N_BAD
        assert result.stats.ok_count == N_ITEMS - N_BAD
        assert len(result.stats.latencies) == N_ITEMS - N_BAD
        assert "isolated" in result.stats.report()

    def test_workers2_identical_to_serial(self, engine, poisoned_dh, serial_dh_result):
        me, pubs, _, _ = poisoned_dh
        parallel = engine.batch_dh(me.private, pubs, workers=2)
        # Byte-identical values, equal envelopes (latency excluded from
        # envelope identity), same order.
        assert parallel.results == serial_dh_result.results
        assert parallel.stats.workers == 2
        assert parallel.stats.errors_by_kind == serial_dh_result.stats.errors_by_kind

    def test_strict_reproduces_raise_behaviour(self, engine, poisoned_dh):
        me, pubs, expected_kinds, _ = poisoned_dh
        first_bad = min(expected_kinds)
        expected_exc = (
            SmallOrderPoint
            if expected_kinds[first_bad] == KIND_SMALL_ORDER
            else DecodingError
        )
        with pytest.raises(expected_exc):
            engine.batch_dh(me.private, pubs, strict=True)
        # Strict mode across workers raises the same class.
        with pytest.raises(expected_exc):
            engine.batch_dh(me.private, pubs[: first_bad + 2], workers=2, strict=True)

    def test_unwrap_raises_and_clean_batch_unwraps(self, engine, poisoned_dh, serial_dh_result):
        me, pubs, expected_kinds, references = poisoned_dh
        with pytest.raises((SmallOrderPoint, DecodingError)):
            serial_dh_result.unwrap()
        good_pubs = [pubs[i] for i in sorted(references)]
        clean = engine.batch_dh(me.private, good_pubs[:3])
        assert clean.unwrap() == [references[i] for i in sorted(references)[:3]]


class TestBatchVerifyFaults:
    def test_malformed_signature_is_typed_error_not_batch_abort(self, engine):
        rng = random.Random(0x5160)
        key = fourq_schnorr.generate_keypair(rng)
        sig = fourq_schnorr.sign(key, b"serve", nonce=12345)
        # Invalid-but-well-formed: verifies False (a verdict, not a fault).
        wrong_s = dataclasses.replace(sig, s=(sig.s + 1) % SUBGROUP_ORDER_N)
        # Unprocessable material: a typed Failed envelope.
        junk = dataclasses.replace(sig, s="junk")

        result = engine.batch_verify(
            [
                (key.public, b"serve", sig),
                (key.public, b"serve", junk),
                (key.public, b"serve", wrong_s),
            ]
        )
        assert result[0] is True
        assert isinstance(result[1], Failed) and result[1].kind == KIND_TYPE
        assert result[1].index == 1
        assert result[2] is False
        assert result.ok_count == 2
        assert result.stats.errors_by_kind == {KIND_TYPE: 1}

        with pytest.raises(TypeError):
            engine.batch_verify([(key.public, b"serve", junk)], strict=True)


class TestWorkerRecovery:
    def test_killed_worker_chunk_is_recovered(self, engine):
        """A worker dying mid-batch loses no result and preserves order."""
        scalars = (11, 12, 13)
        jobs = [("fault", ("exit",))] + [
            ("sm", (k, AffinePoint.generator())) for k in scalars
        ]
        result = engine._run_batch(jobs, workers=2, dedup=False)
        assert result.stats.requeues >= 1
        assert result.stats.retries >= 1
        # The fault job was recovered by the parent's serial re-run.
        assert result[0] == ("fault", "exit")
        for k, got in zip(scalars, result.results[1:]):
            ref = scalar_mul_fourq(k, AffinePoint.generator())
            assert (got.x, got.y) == (ref.x, ref.y)

    def test_timed_out_chunk_is_recovered(self, engine):
        """A chunk over its time budget is requeued, not waited on."""
        engine.chunk_timeout = 0.25
        try:
            result = engine._run_batch(
                [("fault", ("sleep", 3.0)), ("fault", ("noop",))],
                workers=2,
                dedup=False,
            )
        finally:
            engine.chunk_timeout = None
        assert result.stats.requeues >= 1
        assert result.results == [("fault", "sleep"), ("fault", "noop")]


class TestVerifyOutputsStrictness:
    def test_missing_output_name_raises(self):
        """A renamed/dropped output must fail the end-to-end check."""
        from repro.flow import _verify_outputs, run_flow
        from repro.rtl.datapath import SimulationError
        from repro.trace import trace_loop_iteration

        flow = run_flow(trace_loop_iteration(random.Random(9)))
        sim = flow.simulation
        name = next(iter(sim.outputs))
        pruned = dataclasses.replace(
            sim, outputs={k: v for k, v in sim.outputs.items() if k != name}
        )
        with pytest.raises(SimulationError, match="missing"):
            _verify_outputs(flow.trace_program, flow.microprogram, pruned)
        # The intact result still verifies.
        _verify_outputs(flow.trace_program, flow.microprogram, sim)


class TestClassification:
    def test_exception_taxonomy(self):
        assert classify_exception(SmallOrderPoint("x")) == KIND_SMALL_ORDER
        assert classify_exception(DecodingError("x")) == KIND_DECODING
        assert classify_exception(ValueError("x")) == "value"
        assert classify_exception(TypeError("x")) == KIND_TYPE
        assert classify_exception(ZeroDivisionError("x")) == "internal"

    def test_failed_rematerializes_exception(self):
        failure = Failed(kind=KIND_SMALL_ORDER, message="small order", index=3)
        exc = failure.to_exception()
        assert isinstance(exc, SmallOrderPoint)
        assert str(exc) == "small order"
        unknown = Failed(kind="worker_crash", message="boom")
        assert type(unknown.to_exception()).__name__ == "BatchItemError"
